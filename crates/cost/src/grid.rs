//! Geometric sampling grids with multilinear interpolation.
//!
//! The paper profiles at power-of-two intervals and uses linear
//! interpolation between sampled points (§3). [`NdGrid`] implements that
//! for up to three axes (micro-batch size × query length × context length);
//! 2D and 1D grids use degenerate trailing axes.
//!
//! Two query paths exist: the scalar [`NdGrid::query`] and the batched
//! [`BatchQuery`]/[`NdGrid::query_batch`] pair. A `BatchQuery` resolves
//! many points against a set of axes up front — each distinct coordinate
//! is located once per axis and duplicate points collapse onto one cell —
//! and can then be evaluated against every grid sharing those axes
//! (forward, backward, recompute and activation profiles of one layer
//! kind). Batched evaluation is bit-identical to calling `query` per
//! point.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative process-wide grid-query counters (diagnostics; relaxed
/// atomics, so numbers are exact only for single-threaded phases and
/// approximate-but-complete otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridQueryStats {
    /// Scalar [`NdGrid::query`] calls.
    pub scalar: u64,
    /// Points requested across all [`BatchQuery`] builds.
    pub batch_points: u64,
    /// Distinct located cells across all [`BatchQuery`] builds.
    pub batch_cells: u64,
    /// Cell evaluations across all [`NdGrid::query_batch`] calls.
    pub batch_evals: u64,
}

static SCALAR_QUERIES: AtomicU64 = AtomicU64::new(0);
static BATCH_POINTS: AtomicU64 = AtomicU64::new(0);
static BATCH_CELLS: AtomicU64 = AtomicU64::new(0);
static BATCH_EVALS: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide grid-query counters.
pub fn grid_query_stats() -> GridQueryStats {
    GridQueryStats {
        scalar: SCALAR_QUERIES.load(Ordering::Relaxed),
        batch_points: BATCH_POINTS.load(Ordering::Relaxed),
        batch_cells: BATCH_CELLS.load(Ordering::Relaxed),
        batch_evals: BATCH_EVALS.load(Ordering::Relaxed),
    }
}

impl GridQueryStats {
    /// Counter deltas since an earlier snapshot. Saturating: the scalar
    /// counter's cheap load+store pair can move backward under concurrent
    /// scalar queriers, and a garbage near-`u64::MAX` delta (or a debug
    /// overflow panic) must not escape into artifacts.
    pub fn since(&self, earlier: &GridQueryStats) -> GridQueryStats {
        GridQueryStats {
            scalar: self.scalar.saturating_sub(earlier.scalar),
            batch_points: self.batch_points.saturating_sub(earlier.batch_points),
            batch_cells: self.batch_cells.saturating_sub(earlier.batch_cells),
            batch_evals: self.batch_evals.saturating_sub(earlier.batch_evals),
        }
    }
}

/// Multiply-xor hasher for integer-keyed hot-loop maps: keys are small or
/// already well-mixed integers (axis coordinates, packed points, packed
/// shape extents), so SipHash's DoS resistance is wasted overhead.
/// Shared with the batcher's shape-dedup maps.
#[derive(Default)]
pub struct CoordHasher(u64);

impl std::hash::Hasher for CoordHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, x: u64) {
        // splitmix64-style finalizer over the previous state.
        let mut z = self.0 ^ x.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        self.0 = z ^ (z >> 31);
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

type CoordMap<K> = HashMap<K, u32, BuildHasherDefault<CoordHasher>>;

/// One sampling axis: a sorted list of sampled coordinate values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Axis {
    /// Sampled coordinates, strictly increasing.
    pub values: Vec<usize>,
}

impl Axis {
    /// An axis over the given sorted values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or not strictly increasing.
    pub fn new(values: Vec<usize>) -> Self {
        assert!(!values.is_empty(), "axis needs at least one sample");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "axis values must be strictly increasing"
        );
        Axis { values }
    }

    /// Power-of-two axis `from, 2·from, …, to` (inclusive; both powers of 2).
    pub fn pow2(from: usize, to: usize) -> Self {
        assert!(from.is_power_of_two() && to.is_power_of_two() && from <= to);
        let mut v = Vec::new();
        let mut x = from;
        while x <= to {
            v.push(x);
            x *= 2;
        }
        Axis::new(v)
    }

    /// A degenerate single-point axis (used to reduce dimensionality).
    pub fn singleton() -> Self {
        Axis::new(vec![0])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has no samples. The constructor rejects empty
    /// value lists, so this is always `false` for a constructed axis; it
    /// exists for the `len`/`is_empty` API convention. For the degenerate
    /// single-sample case (what [`Axis::singleton`] produces), use
    /// [`Axis::is_degenerate`].
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the axis is degenerate: a single sample, so every query
    /// lands on it with fraction 0 and the axis contributes nothing to
    /// interpolation (the [`Axis::singleton`] case).
    pub fn is_degenerate(&self) -> bool {
        self.values.len() == 1
    }

    /// Locate `x`: returns the lower bracketing index and the interpolation
    /// fraction. Queries below the first sample clamp (fraction 0); queries
    /// above the last sample *extrapolate linearly* along the top segment
    /// (fraction > 1) — clamping there would silently underestimate costs
    /// of micro-batches larger than anything profiled, which is exactly the
    /// kind of error that turns into an OOM at run time.
    pub fn locate(&self, x: usize) -> (usize, f64) {
        let v = &self.values;
        if x <= v[0] || self.is_degenerate() {
            return (0, 0.0);
        }
        let last = *v.last().expect("non-empty");
        if x >= last {
            let lo = v.len() - 2;
            let frac = (x - v[lo]) as f64 / (v[lo + 1] - v[lo]) as f64;
            return (lo, frac);
        }
        // partition_point: first index with value > x, so idx-1 brackets x.
        let hi = v.partition_point(|&p| p <= x);
        let lo = hi - 1;
        let frac = (x - v[lo]) as f64 / (v[hi] - v[lo]) as f64;
        (lo, frac)
    }
}

/// One query point resolved against a set of axes: the lower bracketing
/// index, the clamped upper index, and the interpolation fraction per axis
/// — everything [`NdGrid::query`] derives per call, precomputed.
#[derive(Debug, Clone, Copy)]
struct LocatedCell {
    i: [u32; 3],
    j: [u32; 3],
    f: [f64; 3],
}

/// Memoized [`Axis::locate`]: each distinct coordinate is located once.
/// Small coordinate ranges use a direct-index slot table (no hashing at
/// all); large ones fall back to a hash map.
struct AxisMemo<'a> {
    axis: &'a Axis,
    located: Vec<(u32, f64)>,
    /// Direct-index path: `slots[x]` is the 1-based located slot of
    /// coordinate `x` (0 = not yet located). Used when coordinates fit.
    slots: Vec<u32>,
    by_coord: CoordMap<usize>,
}

/// Largest coordinate the direct-index memo path covers (a 256 KiB slot
/// table at most; real coordinates — batch sizes, sequence lengths — are
/// far smaller).
const DIRECT_MEMO_MAX: usize = 1 << 16;

impl<'a> AxisMemo<'a> {
    fn new(axis: &'a Axis, max_coord: usize) -> Self {
        AxisMemo {
            axis,
            located: Vec::new(),
            slots: if axis.is_degenerate() || max_coord > DIRECT_MEMO_MAX {
                Vec::new()
            } else {
                vec![0; max_coord + 1]
            },
            by_coord: CoordMap::default(),
        }
    }

    fn locate(&mut self, x: usize) -> (u32, f64) {
        // Degenerate axes (singletons) always resolve to (0, 0.0); skip
        // the memo entirely.
        if self.axis.is_degenerate() {
            return (0, 0.0);
        }
        if !self.slots.is_empty() {
            let slot = self.slots[x];
            if slot != 0 {
                return self.located[slot as usize - 1];
            }
            let (i, f) = self.axis.locate(x);
            self.located.push((i as u32, f));
            self.slots[x] = self.located.len() as u32;
            return (i as u32, f);
        }
        let next = self.located.len() as u32;
        let slot = *self.by_coord.entry(x).or_insert(next);
        if slot == next {
            let (i, f) = self.axis.locate(x);
            self.located.push((i as u32, f));
        }
        self.located[slot as usize]
    }
}

/// A batch of query points resolved once against a set of axes — the
/// query plan of the batched interpolation path.
///
/// Building a `BatchQuery` locates each distinct coordinate once per axis
/// and collapses duplicate `(x0, x1, x2)` points onto a single cell; the
/// plan records, per input point, which cell it reads. [`NdGrid::query_batch`]
/// then evaluates each distinct cell exactly once and scatters the values
/// back in input order. Because the plan stores only indices and
/// fractions, one plan serves every grid built over the same axes (a layer
/// profile's forward/backward/recompute/activation grids), so the
/// per-point binary searches are paid once per batch instead of once per
/// grid per point.
#[derive(Debug, Clone)]
pub struct BatchQuery {
    cells: Vec<LocatedCell>,
    /// Per input point: index into `cells`.
    point_cell: Vec<u32>,
    /// Fingerprint of the axes the plan was located against — sample
    /// count plus first/last sample per axis (guards misuse: cached
    /// bracketing indices and fractions are only valid on grids sharing
    /// the axes).
    axis_prints: [(usize, usize, usize); 3],
}

/// The misuse-guard fingerprint of one axis.
fn axis_print(a: &Axis) -> (usize, usize, usize) {
    (a.len(), a.values[0], *a.values.last().expect("non-empty"))
}

impl BatchQuery {
    /// Resolve `points` against `(a0, a1, a2)`. The resulting plan may be
    /// evaluated on any [`NdGrid`] whose axes have the same sample layout.
    ///
    /// Points that resolve to the same cell are collapsed; coordinates on
    /// degenerate axes never distinguish cells (every query lands on the
    /// single sample with fraction 0, so the interpolation arithmetic —
    /// and therefore the bit pattern of the result — is identical).
    pub fn locate(
        a0: &Axis,
        a1: &Axis,
        a2: &Axis,
        points: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> BatchQuery {
        Self::locate_impl(a0, a1, a2, points, true)
    }

    /// Like [`BatchQuery::locate`], for points the caller knows to be
    /// pairwise distinct (e.g. coordinates derived injectively from an
    /// already-deduplicated shape table): skips duplicate-cell detection
    /// entirely, so each point maps to its own cell. If the assumption is
    /// wrong the plan is still correct — coinciding cells are merely
    /// evaluated more than once.
    pub fn locate_distinct(
        a0: &Axis,
        a1: &Axis,
        a2: &Axis,
        points: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> BatchQuery {
        Self::locate_impl(a0, a1, a2, points, false)
    }

    fn locate_impl(
        a0: &Axis,
        a1: &Axis,
        a2: &Axis,
        points: impl IntoIterator<Item = (usize, usize, usize)>,
        dedup: bool,
    ) -> BatchQuery {
        let pts: Vec<(usize, usize, usize)> = points.into_iter().collect();
        // Effective coordinates: a degenerate axis contributes nothing to
        // cell identity.
        let eff = |x: usize, ax: &Axis| if ax.is_degenerate() { 0 } else { x };
        let (mut max0, mut max1, mut max2) = (0usize, 0usize, 0usize);
        for &(x0, x1, x2) in &pts {
            max0 = max0.max(eff(x0, a0));
            max1 = max1.max(eff(x1, a1));
            max2 = max2.max(eff(x2, a2));
        }
        let bits = |m: usize| (usize::BITS - m.leading_zeros()) as u32;
        let (b0, b1) = (bits(max0), bits(max1));
        let mut m0 = AxisMemo::new(a0, max0);
        let mut m1 = AxisMemo::new(a1, max1);
        let mut m2 = AxisMemo::new(a2, max2);
        let mut cells: Vec<LocatedCell> = Vec::with_capacity(pts.len());
        let mut point_cell: Vec<u32> = Vec::with_capacity(pts.len());
        let clamp = |i: u32, len: usize| ((i as usize + 1).min(len - 1)) as u32;
        let mut locate_cell = |p: (usize, usize, usize)| {
            let (i0, f0) = m0.locate(p.0);
            let (i1, f1) = m1.locate(p.1);
            let (i2, f2) = m2.locate(p.2);
            LocatedCell {
                i: [i0, i1, i2],
                j: [clamp(i0, a0.len()), clamp(i1, a1.len()), clamp(i2, a2.len())],
                f: [f0, f1, f2],
            }
        };
        if !dedup {
            for &p in &pts {
                point_cell.push(cells.len() as u32);
                cells.push(locate_cell(p));
            }
        } else if b0 + b1 + bits(max2) <= u64::BITS {
            // Effective coordinates pack into one u64 key: dedup through a
            // dense integer map (cheap hash, cache-friendly entries).
            let mut by_key: CoordMap<u64> = CoordMap::with_capacity_and_hasher(
                pts.len(),
                BuildHasherDefault::default(),
            );
            for &p in &pts {
                let key = eff(p.0, a0) as u64
                    | (eff(p.1, a1) as u64) << b0
                    | (eff(p.2, a2) as u64) << (b0 + b1);
                let next = cells.len() as u32;
                let id = *by_key.entry(key).or_insert(next);
                if id == next {
                    cells.push(locate_cell(p));
                }
                point_cell.push(id);
            }
        } else {
            let mut by_point: CoordMap<(usize, usize, usize)> =
                CoordMap::with_capacity_and_hasher(pts.len(), BuildHasherDefault::default());
            for &p in &pts {
                let key = (eff(p.0, a0), eff(p.1, a1), eff(p.2, a2));
                let next = cells.len() as u32;
                let id = *by_point.entry(key).or_insert(next);
                if id == next {
                    cells.push(locate_cell(p));
                }
                point_cell.push(id);
            }
        }
        BATCH_POINTS.fetch_add(point_cell.len() as u64, Ordering::Relaxed);
        BATCH_CELLS.fetch_add(cells.len() as u64, Ordering::Relaxed);
        BatchQuery {
            cells,
            point_cell,
            axis_prints: [axis_print(a0), axis_print(a1), axis_print(a2)],
        }
    }

    /// Number of input points (the length of every evaluation's output).
    pub fn num_points(&self) -> usize {
        self.point_cell.len()
    }

    /// Number of distinct located cells (grid evaluations per
    /// [`NdGrid::query_batch`] call).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }
}

/// A dense 3-axis grid of `f64` samples with multilinear interpolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdGrid {
    /// First axis (e.g. micro-batch size).
    pub a0: Axis,
    /// Second axis (e.g. query sequence length).
    pub a1: Axis,
    /// Third axis (e.g. key/value sequence length); singleton when unused.
    pub a2: Axis,
    data: Vec<f64>,
}

impl NdGrid {
    /// Build a grid by evaluating `f` at every sample point.
    pub fn build(
        a0: Axis,
        a1: Axis,
        a2: Axis,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(a0.len() * a1.len() * a2.len());
        for &x0 in &a0.values {
            for &x1 in &a1.values {
                for &x2 in &a2.values {
                    data.push(f(x0, x1, x2));
                }
            }
        }
        NdGrid { a0, a1, a2, data }
    }

    fn at(&self, i0: usize, i1: usize, i2: usize) -> f64 {
        self.data[(i0 * self.a1.len() + i1) * self.a2.len() + i2]
    }

    /// Multilinearly interpolated value at `(x0, x1, x2)`. Queries below
    /// an axis's first sample clamp to it; queries above the last sample
    /// *extrapolate linearly* along the top segment (see [`Axis::locate`]
    /// for why clamping above would be dangerous).
    pub fn query(&self, x0: usize, x1: usize, x2: usize) -> f64 {
        // Deliberately NOT an atomic RMW: a relaxed load+store pair keeps
        // the per-query overhead to a couple of cycles so the counter does
        // not tax the scalar hot path it instruments (a locked `fetch_add`
        // here measurably inflates the serial baseline the planning bench
        // times). Concurrent scalar queriers may lose increments — the
        // stats are documented as exact only for single-threaded phases.
        SCALAR_QUERIES.store(
            SCALAR_QUERIES.load(Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let (i0, f0) = self.a0.locate(x0);
        let (i1, f1) = self.a1.locate(x1);
        let (i2, f2) = self.a2.locate(x2);
        let j0 = (i0 + 1).min(self.a0.len() - 1);
        let j1 = (i1 + 1).min(self.a1.len() - 1);
        let j2 = (i2 + 1).min(self.a2.len() - 1);
        self.interpolate(i0, i1, i2, j0, j1, j2, f0, f1, f2)
    }

    /// The shared trilinear kernel: both query paths funnel through this,
    /// so batched evaluation is bit-identical to scalar queries by
    /// construction (same operands, same operation order).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn interpolate(
        &self,
        i0: usize,
        i1: usize,
        i2: usize,
        j0: usize,
        j1: usize,
        j2: usize,
        f0: f64,
        f1: f64,
        f2: f64,
    ) -> f64 {
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(self.at(i0, i1, i2), self.at(j0, i1, i2), f0);
        let c10 = lerp(self.at(i0, j1, i2), self.at(j0, j1, i2), f0);
        let c01 = lerp(self.at(i0, i1, j2), self.at(j0, i1, j2), f0);
        let c11 = lerp(self.at(i0, j1, j2), self.at(j0, j1, j2), f0);
        let c0 = lerp(c00, c10, f1);
        let c1 = lerp(c01, c11, f1);
        lerp(c0, c1, f2)
    }

    /// Evaluate every point of `batch` against this grid, appending one
    /// value per input point (in input order) to `out`. Each distinct cell
    /// is evaluated once and scattered to the points sharing it. Values
    /// are bit-identical to calling [`NdGrid::query`] per point, including
    /// the above-range extrapolation behavior.
    ///
    /// # Panics
    ///
    /// Panics if the grid's axes do not have the sample counts the batch
    /// was located against.
    pub fn query_batch(&self, batch: &BatchQuery, out: &mut Vec<f64>) {
        assert_eq!(
            batch.axis_prints,
            [
                axis_print(&self.a0),
                axis_print(&self.a1),
                axis_print(&self.a2)
            ],
            "batch was located against differently-shaped axes"
        );
        BATCH_EVALS.fetch_add(batch.cells.len() as u64, Ordering::Relaxed);
        let vals: Vec<f64> = batch
            .cells
            .iter()
            .map(|c| {
                self.interpolate(
                    c.i[0] as usize,
                    c.i[1] as usize,
                    c.i[2] as usize,
                    c.j[0] as usize,
                    c.j[1] as usize,
                    c.j[2] as usize,
                    c.f[0],
                    c.f[1],
                    c.f[2],
                )
            })
            .collect();
        out.reserve(batch.point_cell.len());
        out.extend(batch.point_cell.iter().map(|&id| vals[id as usize]));
    }

    /// Feasibility-masked [`NdGrid::query_batch`]: evaluate only the
    /// points with `mask[i] == true`, appending one value per input point
    /// (in input order) to `out`. Masked-out points receive
    /// `f64::INFINITY` (a poison value — callers skip them), and cells
    /// referenced *only* by masked points are never interpolated, so the
    /// evaluation cost scales with the unmasked subset. Unmasked values
    /// are bit-identical to [`NdGrid::query`] / [`NdGrid::query_batch`].
    ///
    /// This is the grid-level face of the cost pass's feasibility mask:
    /// backward halves of memory-infeasible shapes are dead work (the DP
    /// never reads them), so the batched solve skips their cells exactly
    /// as the scalar path skipped their queries.
    ///
    /// Returns the number of cells actually interpolated.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the batch's point count, or if
    /// the grid's axes do not match the batch (as in `query_batch`).
    pub fn query_batch_masked(
        &self,
        batch: &BatchQuery,
        mask: &[bool],
        out: &mut Vec<f64>,
    ) -> usize {
        assert_eq!(
            batch.axis_prints,
            [
                axis_print(&self.a0),
                axis_print(&self.a1),
                axis_print(&self.a2)
            ],
            "batch was located against differently-shaped axes"
        );
        assert_eq!(
            mask.len(),
            batch.point_cell.len(),
            "one mask entry per batch point required"
        );
        let mut needed = vec![false; batch.cells.len()];
        let mut num_needed = 0u64;
        for (p, &cell) in batch.point_cell.iter().enumerate() {
            if mask[p] && !needed[cell as usize] {
                needed[cell as usize] = true;
                num_needed += 1;
            }
        }
        BATCH_EVALS.fetch_add(num_needed, Ordering::Relaxed);
        let vals: Vec<f64> = batch
            .cells
            .iter()
            .zip(&needed)
            .map(|(c, &n)| {
                if !n {
                    return f64::INFINITY;
                }
                self.interpolate(
                    c.i[0] as usize,
                    c.i[1] as usize,
                    c.i[2] as usize,
                    c.j[0] as usize,
                    c.j[1] as usize,
                    c.j[2] as usize,
                    c.f[0],
                    c.f[1],
                    c.f[2],
                )
            })
            .collect();
        out.reserve(batch.point_cell.len());
        out.extend(
            batch
                .point_cell
                .iter()
                .enumerate()
                .map(|(p, &id)| if mask[p] { vals[id as usize] } else { f64::INFINITY }),
        );
        num_needed as usize
    }

    /// Resolve `points` against this grid's own axes (see
    /// [`BatchQuery::locate`]; the plan is reusable on any grid sharing
    /// the axes).
    pub fn plan_queries(
        &self,
        points: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> BatchQuery {
        BatchQuery::locate(&self.a0, &self.a1, &self.a2, points)
    }

    /// Like [`NdGrid::plan_queries`], for points the caller knows are
    /// pairwise distinct (see [`BatchQuery::locate_distinct`]).
    pub fn plan_queries_distinct(
        &self,
        points: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> BatchQuery {
        BatchQuery::locate_distinct(&self.a0, &self.a1, &self.a2, points)
    }

    /// Number of stored samples.
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_brackets_and_clamps() {
        let a = Axis::pow2(1, 16); // 1,2,4,8,16
        assert_eq!(a.locate(1), (0, 0.0));
        assert_eq!(a.locate(0), (0, 0.0));
        assert_eq!(a.locate(16), (3, 1.0));
        // Above the top sample: linear extrapolation along the last segment.
        let (i, f) = a.locate(100);
        assert_eq!(i, 3);
        assert!((f - (100.0 - 8.0) / 8.0).abs() < 1e-12);
        let (i, f) = a.locate(3);
        assert_eq!(i, 1);
        assert!((f - 0.5).abs() < 1e-12);
        let (i, f) = a.locate(12);
        assert_eq!(i, 3);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interpolation_exact_at_grid_points() {
        let g = NdGrid::build(
            Axis::pow2(1, 8),
            Axis::pow2(32, 128),
            Axis::singleton(),
            |b, s, _| (b * s) as f64,
        );
        for &b in &[1usize, 2, 4, 8] {
            for &s in &[32usize, 64, 128] {
                assert_eq!(g.query(b, s, 0), (b * s) as f64);
            }
        }
    }

    #[test]
    fn interpolation_linear_between_points() {
        let g = NdGrid::build(
            Axis::pow2(1, 8),
            Axis::singleton(),
            Axis::singleton(),
            |b, _, _| b as f64 * 10.0,
        );
        // Linear function is reproduced exactly everywhere.
        assert!((g.query(3, 0, 0) - 30.0).abs() < 1e-9);
        assert!((g.query(6, 0, 0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_error_small_for_smooth_superlinear() {
        // A quadratic (attention-like) curve sampled at powers of two:
        // interpolation should stay within a few percent relative error.
        let g = NdGrid::build(
            Axis::singleton(),
            Axis::pow2(32, 8192),
            Axis::singleton(),
            |_, s, _| (s * s) as f64,
        );
        for s in [48usize, 100, 700, 3000, 6000] {
            let est = g.query(0, s, 0);
            let truth = (s * s) as f64;
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.30, "s={s}: rel err {rel}");
            assert!(est >= truth, "chord of a convex function lies above it");
        }
    }

    #[test]
    fn trilinear_matches_separable_function() {
        let g = NdGrid::build(
            Axis::pow2(1, 4),
            Axis::pow2(16, 64),
            Axis::pow2(16, 64),
            |b, s1, s2| (b * (s1 + s2)) as f64,
        );
        // Multilinear in each coordinate, so exact for this function.
        assert!((g.query(3, 24, 48) - (3 * (24 + 48)) as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn axis_rejects_unsorted() {
        let _ = Axis::new(vec![1, 3, 2]);
    }

    #[test]
    fn singleton_axis_is_degenerate_but_not_empty() {
        let s = Axis::singleton();
        assert!(s.is_degenerate());
        assert!(!s.is_empty(), "constructed axes always hold >= 1 sample");
        assert_eq!(s.len(), 1);
        let multi = Axis::pow2(1, 8);
        assert!(!multi.is_degenerate());
        assert!(!multi.is_empty());
    }

    #[test]
    fn query_extrapolates_above_top_sample_1d() {
        // Pin the above-range behavior the `query` doc promises: linear
        // extrapolation along the top segment, NOT a clamp.
        let g = NdGrid::build(
            Axis::pow2(1, 8),
            Axis::singleton(),
            Axis::singleton(),
            |b, _, _| b as f64 * 10.0,
        );
        // Top segment is (4, 8) with values (40, 80): x=16 extrapolates to
        // 40 + (16-4)/(8-4) * (80-40) = 160, well above the clamped 80.
        assert_eq!(g.query(16, 0, 0), 160.0);
        assert_eq!(g.query(12, 0, 0), 120.0);
        // Below-range queries clamp to the first sample.
        assert_eq!(g.query(0, 0, 0), 10.0);
    }

    #[test]
    fn query_extrapolates_above_top_sample_3d() {
        let g = NdGrid::build(
            Axis::pow2(1, 4),
            Axis::pow2(16, 64),
            Axis::pow2(16, 64),
            |b, s1, s2| (b * (s1 + s2)) as f64,
        );
        // Multilinear in each coordinate, so extrapolation reproduces the
        // separable function exactly even with every coordinate above its
        // top sample.
        assert!((g.query(8, 128, 256) - (8 * (128 + 256)) as f64).abs() < 1e-9);
        // Mixed: one axis above range, one in range, one below.
        assert!((g.query(8, 24, 8) - (8 * (24 + 16)) as f64).abs() < 1e-9);
    }

    #[test]
    fn batched_queries_bit_identical_to_scalar() {
        let g = NdGrid::build(
            Axis::pow2(1, 16),
            Axis::pow2(16, 256),
            Axis::pow2(16, 256),
            |b, s1, s2| (b * s1) as f64 * 1.37 + (s2 as f64).sqrt() * 0.11,
        );
        // In-range, on-grid, below-range and above-range (extrapolating)
        // points, with duplicates to exercise the cell collapse.
        let points = [
            (3usize, 100usize, 33usize),
            (1, 16, 16),
            (0, 0, 0),
            (64, 1000, 17),
            (3, 100, 33),
            (16, 256, 256),
            (5, 300, 4000),
            (3, 100, 33),
        ];
        let batch = g.plan_queries(points.iter().copied());
        assert_eq!(batch.num_points(), points.len());
        assert_eq!(batch.num_cells(), points.len() - 2, "duplicates collapse");
        let mut out = Vec::new();
        g.query_batch(&batch, &mut out);
        for (p, v) in points.iter().zip(&out) {
            assert_eq!(
                v.to_bits(),
                g.query(p.0, p.1, p.2).to_bits(),
                "point {p:?} diverged from scalar query"
            );
        }
    }

    #[test]
    fn masked_batch_matches_scalar_on_unmasked_and_skips_dead_cells() {
        let g = NdGrid::build(
            Axis::pow2(1, 16),
            Axis::pow2(16, 256),
            Axis::pow2(16, 256),
            |b, s1, s2| (b * s1) as f64 * 1.37 + (s2 as f64).sqrt() * 0.11,
        );
        let points = [
            (3usize, 100usize, 33usize),
            (1, 16, 16),
            (64, 1000, 17),
            (3, 100, 33), // duplicate of point 0 (shared cell)
            (5, 300, 4000),
            (16, 256, 256),
        ];
        let batch = g.plan_queries(points.iter().copied());
        // Mask out points 1 and 4; point 3 shares its cell with unmasked
        // point 0, so that cell must still be evaluated.
        let mask = [true, false, true, true, false, true];
        let mut out = Vec::new();
        let evals = g.query_batch_masked(&batch, &mask, &mut out);
        assert_eq!(out.len(), points.len());
        for (i, p) in points.iter().enumerate() {
            if mask[i] {
                assert_eq!(
                    out[i].to_bits(),
                    g.query(p.0, p.1, p.2).to_bits(),
                    "unmasked point {p:?} diverged from scalar query"
                );
            } else {
                assert!(out[i].is_infinite(), "masked point must be poisoned");
            }
        }
        // 4 distinct unmasked points share 3 distinct cells (0 and 3
        // collapse); the 2 masked points' private cells are never touched.
        assert_eq!(evals, 3, "only cells reachable from unmasked points");
    }

    #[test]
    fn fully_masked_batch_evaluates_nothing() {
        let g = NdGrid::build(
            Axis::pow2(1, 8),
            Axis::singleton(),
            Axis::singleton(),
            |b, _, _| b as f64,
        );
        let batch = g.plan_queries([(2usize, 0usize, 0usize), (5, 0, 0)]);
        let mut out = Vec::new();
        assert_eq!(g.query_batch_masked(&batch, &[false, false], &mut out), 0);
        assert!(out.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn batch_plan_reusable_across_grids_sharing_axes() {
        let a0 = Axis::pow2(1, 8);
        let a1 = Axis::pow2(32, 128);
        let f = NdGrid::build(a0.clone(), a1.clone(), Axis::singleton(), |b, s, _| {
            (b * s) as f64
        });
        let gdata = NdGrid::build(a0, a1, Axis::singleton(), |b, s, _| (b + s) as f64);
        let points = [(3usize, 48usize, 0usize), (20, 999, 0)];
        let batch = f.plan_queries(points.iter().copied());
        let (mut of, mut og) = (Vec::new(), Vec::new());
        f.query_batch(&batch, &mut of);
        gdata.query_batch(&batch, &mut og);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(of[i].to_bits(), f.query(p.0, p.1, p.2).to_bits());
            assert_eq!(og[i].to_bits(), gdata.query(p.0, p.1, p.2).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "differently-shaped axes")]
    fn query_batch_rejects_mismatched_axes() {
        let g1 = NdGrid::build(
            Axis::pow2(1, 8),
            Axis::singleton(),
            Axis::singleton(),
            |b, _, _| b as f64,
        );
        let g2 = NdGrid::build(
            Axis::pow2(1, 16),
            Axis::singleton(),
            Axis::singleton(),
            |b, _, _| b as f64,
        );
        let batch = g1.plan_queries([(2usize, 0usize, 0usize)]);
        let mut out = Vec::new();
        g2.query_batch(&batch, &mut out);
    }
}
