//! Profiling: populate cost grids by sampling the hardware model.
//!
//! In the paper this step runs real forward/backward kernels on a GPU at
//! power-of-two micro-batch sizes and sequence lengths (§3). Here the
//! "device" is the analytic [`HardwareModel`] — the same ground truth the
//! discrete-event simulator executes against — so profiling is exact at
//! grid points and the only estimation error is interpolation (plus
//! whatever jitter the simulator injects at run time).

use crate::grid::{Axis, NdGrid};
use dynapipe_model::config::ModelConfig;
use dynapipe_model::hardware::{HardwareModel, LayerKind};
use dynapipe_model::memory::{MemoryModel, RecomputeMode};
use dynapipe_model::parallel::StageAssignment;
use dynapipe_model::shapes::MicroBatchShape;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Profiling grid resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileOptions {
    /// Largest micro-batch size to sample (powers of two from 1).
    pub max_batch: usize,
    /// Smallest sequence length to sample (a power of two).
    pub min_seq: usize,
    /// Largest sequence length to sample (a power of two).
    pub max_seq: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            max_batch: 256,
            min_seq: 16,
            max_seq: 65536,
        }
    }
}

impl ProfileOptions {
    /// Coarser grid for fast tests.
    pub fn coarse() -> Self {
        ProfileOptions {
            max_batch: 32,
            min_seq: 32,
            max_seq: 8192,
        }
    }
}

/// Profiled quantities for one layer kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Forward time (µs) over (batch, q-len, kv-len).
    pub fwd_time: NdGrid,
    /// Backward time (µs), excluding recomputation overhead.
    pub bwd_time: NdGrid,
    /// Recompute overhead (µs) per mode index (same order as
    /// [`RecomputeMode::ALL`]).
    pub recompute_extra: Vec<NdGrid>,
    /// Stored activation bytes per mode index.
    pub activation: Vec<NdGrid>,
}

/// The profiled database for a (model, tensor-parallel degree) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileDb {
    /// The profiled model.
    pub model: ModelConfig,
    /// Tensor-parallel degree the profile was captured under.
    pub tp: usize,
    /// Per-layer-kind grids.
    pub layers: HashMap<LayerKind, LayerProfile>,
    /// LM-head forward time (µs) over target-token count (axis 0).
    pub lm_head_fwd: NdGrid,
}

impl ProfileDb {
    /// Profile `model` under tensor parallelism `tp` against `hw`.
    ///
    /// Runs the power-of-two sweep of §3: for each layer kind, forward and
    /// backward time plus activation memory under every recomputation mode.
    /// The decoder layer kind of encoder-decoder models is profiled over a
    /// 3D grid (batch × target-len × context-len) because cross-attention
    /// couples both sequence lengths.
    pub fn profile(
        hw: &HardwareModel,
        mem: &MemoryModel,
        model: &ModelConfig,
        tp: usize,
        opts: &ProfileOptions,
    ) -> Self {
        let kinds: &[LayerKind] = match model.arch {
            dynapipe_model::ModelArch::Gpt => &[LayerKind::GptDecoder],
            dynapipe_model::ModelArch::T5 => &[LayerKind::T5Encoder, LayerKind::T5Decoder],
        };
        let batch_axis = Axis::pow2(1, opts.max_batch);
        let seq_axis = Axis::pow2(opts.min_seq, opts.max_seq);
        let mut layers = HashMap::new();
        for &kind in kinds {
            let (a1, a2) = match kind {
                LayerKind::T5Decoder => (seq_axis.clone(), seq_axis.clone()),
                _ => (seq_axis.clone(), Axis::singleton()),
            };
            let shape_of = |b: usize, s1: usize, s2: usize| match kind {
                LayerKind::GptDecoder => MicroBatchShape::gpt(b, s1),
                LayerKind::T5Encoder => MicroBatchShape::t5(b, s1, 1),
                // s1 = decoder (query) length, s2 = encoder (context) length.
                LayerKind::T5Decoder => MicroBatchShape::t5(b, s2, s1),
            };
            let fwd_time =
                NdGrid::build(batch_axis.clone(), a1.clone(), a2.clone(), |b, s1, s2| {
                    hw.layer_time_fwd(model, kind, &shape_of(b, s1, s2), tp)
                });
            let bwd_time =
                NdGrid::build(batch_axis.clone(), a1.clone(), a2.clone(), |b, s1, s2| {
                    hw.layer_time_bwd(model, kind, &shape_of(b, s1, s2), tp)
                });
            let single_layer_stage = StageAssignment {
                encoder_layers: usize::from(kind == LayerKind::T5Encoder),
                decoder_layers: usize::from(kind != LayerKind::T5Encoder),
                has_embedding: false,
                has_lm_head: false,
            };
            let recompute_extra = RecomputeMode::ALL
                .iter()
                .map(|&mode| {
                    NdGrid::build(batch_axis.clone(), a1.clone(), a2.clone(), |b, s1, s2| {
                        mem.recompute_extra_time(
                            hw,
                            model,
                            &single_layer_stage,
                            &shape_of(b, s1, s2),
                            mode,
                            tp,
                        )
                    })
                })
                .collect();
            let activation = RecomputeMode::ALL
                .iter()
                .map(|&mode| {
                    NdGrid::build(batch_axis.clone(), a1.clone(), a2.clone(), |b, s1, s2| {
                        mem.layer_activation_bytes(model, kind, &shape_of(b, s1, s2), mode, tp)
                            as f64
                    })
                })
                .collect();
            layers.insert(
                kind,
                LayerProfile {
                    fwd_time,
                    bwd_time,
                    recompute_extra,
                    activation,
                },
            );
        }
        // LM head over total target tokens.
        let token_axis = Axis::pow2(1, opts.max_batch * opts.max_seq);
        let lm_head_fwd = NdGrid::build(
            token_axis,
            Axis::singleton(),
            Axis::singleton(),
            |tokens, _, _| {
                let shape = match model.arch {
                    dynapipe_model::ModelArch::Gpt => MicroBatchShape::gpt(1, tokens),
                    dynapipe_model::ModelArch::T5 => MicroBatchShape::t5(1, 1, tokens),
                };
                let flops = hw.lm_head_flops(model, &shape) / tp as f64;
                flops / hw.effective_flops(flops)
            },
        );
        ProfileDb {
            model: *model,
            tp,
            layers,
            lm_head_fwd,
        }
    }

    /// Index of `mode` in the per-mode grid vectors.
    pub fn mode_index(mode: RecomputeMode) -> usize {
        RecomputeMode::ALL
            .iter()
            .position(|&m| m == mode)
            .expect("mode listed in ALL")
    }

    /// Interpolated forward time of one layer of `kind` for `shape`.
    pub fn layer_fwd(&self, kind: LayerKind, shape: &MicroBatchShape) -> f64 {
        let (q, kv) = Self::coords(kind, shape);
        self.layers[&kind].fwd_time.query(shape.batch_size, q, kv)
    }

    /// Interpolated backward time (excluding recompute overhead).
    pub fn layer_bwd(&self, kind: LayerKind, shape: &MicroBatchShape) -> f64 {
        let (q, kv) = Self::coords(kind, shape);
        self.layers[&kind].bwd_time.query(shape.batch_size, q, kv)
    }

    /// Interpolated recompute overhead for one layer.
    pub fn layer_recompute(
        &self,
        kind: LayerKind,
        shape: &MicroBatchShape,
        mode: RecomputeMode,
    ) -> f64 {
        let (q, kv) = Self::coords(kind, shape);
        self.layers[&kind].recompute_extra[Self::mode_index(mode)].query(shape.batch_size, q, kv)
    }

    /// Interpolated stored-activation bytes for one layer.
    pub fn layer_activation(
        &self,
        kind: LayerKind,
        shape: &MicroBatchShape,
        mode: RecomputeMode,
    ) -> f64 {
        let (q, kv) = Self::coords(kind, shape);
        self.layers[&kind].activation[Self::mode_index(mode)].query(shape.batch_size, q, kv)
    }

    /// Interpolated LM-head forward time for `target_tokens`.
    pub fn lm_head_fwd_time(&self, target_tokens: usize) -> f64 {
        self.lm_head_fwd.query(target_tokens, 0, 0)
    }

    fn coords(kind: LayerKind, shape: &MicroBatchShape) -> (usize, usize) {
        match kind {
            LayerKind::GptDecoder | LayerKind::T5Encoder => (shape.enc_len, 0),
            LayerKind::T5Decoder => (shape.dec_len, shape.enc_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(model: &ModelConfig) -> ProfileDb {
        ProfileDb::profile(
            &HardwareModel::a100_cluster(),
            &MemoryModel::default(),
            model,
            1,
            &ProfileOptions::coarse(),
        )
    }

    #[test]
    fn gpt_profile_has_only_decoder_kind() {
        let d = db(&ModelConfig::gpt_6_7b());
        assert_eq!(d.layers.len(), 1);
        assert!(d.layers.contains_key(&LayerKind::GptDecoder));
    }

    #[test]
    fn t5_profile_has_encoder_and_decoder() {
        let d = db(&ModelConfig::t5_11b());
        assert!(d.layers.contains_key(&LayerKind::T5Encoder));
        assert!(d.layers.contains_key(&LayerKind::T5Decoder));
    }

    #[test]
    fn profile_exact_at_grid_points() {
        let model = ModelConfig::gpt_6_7b();
        let hw = HardwareModel::a100_cluster();
        let d = db(&model);
        let shape = MicroBatchShape::gpt(4, 2048);
        let truth = hw.layer_time_fwd(&model, LayerKind::GptDecoder, &shape, 1);
        let est = d.layer_fwd(LayerKind::GptDecoder, &shape);
        assert!((est - truth).abs() / truth < 1e-9);
    }

    #[test]
    fn profile_interpolation_error_bounded_off_grid() {
        // §8.6: the paper reports ≲11% mean error for time. Off-grid points
        // must interpolate within a tight bound relative to the analytic
        // ground truth.
        let model = ModelConfig::gpt_6_7b();
        let hw = HardwareModel::a100_cluster();
        let d = db(&model);
        for (b, s) in [(3usize, 1000usize), (5, 700), (7, 3000), (12, 333)] {
            let shape = MicroBatchShape::gpt(b, s);
            let truth = hw.layer_time_fwd(&model, LayerKind::GptDecoder, &shape, 1);
            let est = d.layer_fwd(LayerKind::GptDecoder, &shape);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.25, "b={b} s={s}: rel err {rel}");
        }
    }

    #[test]
    fn activation_memory_decreases_with_recompute_mode() {
        let model = ModelConfig::gpt_6_7b();
        let d = db(&model);
        let shape = MicroBatchShape::gpt(4, 2048);
        let none = d.layer_activation(LayerKind::GptDecoder, &shape, RecomputeMode::None);
        let sel = d.layer_activation(LayerKind::GptDecoder, &shape, RecomputeMode::Selective);
        let full = d.layer_activation(LayerKind::GptDecoder, &shape, RecomputeMode::Full);
        assert!(none > sel && sel > full);
    }

    #[test]
    fn recompute_overhead_increases_with_mode() {
        let model = ModelConfig::t5_11b();
        let d = db(&model);
        let shape = MicroBatchShape::t5(4, 2048, 512);
        let none = d.layer_recompute(LayerKind::T5Encoder, &shape, RecomputeMode::None);
        let sel = d.layer_recompute(LayerKind::T5Encoder, &shape, RecomputeMode::Selective);
        let full = d.layer_recompute(LayerKind::T5Encoder, &shape, RecomputeMode::Full);
        assert_eq!(none, 0.0);
        assert!(full > sel && sel > 0.0);
    }

    #[test]
    fn decoder_grid_couples_both_lengths() {
        let model = ModelConfig::t5_11b();
        let d = db(&model);
        let short = MicroBatchShape::t5(2, 256, 128);
        let long = MicroBatchShape::t5(2, 4096, 128);
        // Same decoder length, longer encoder context: costlier cross-attn.
        assert!(
            d.layer_fwd(LayerKind::T5Decoder, &long) > d.layer_fwd(LayerKind::T5Decoder, &short)
        );
    }

    #[test]
    fn lm_head_time_grows_with_tokens() {
        let d = db(&ModelConfig::gpt_6_7b());
        assert!(d.lm_head_fwd_time(8192) > d.lm_head_fwd_time(512));
    }

    #[test]
    fn queries_clamp_outside_grid() {
        let model = ModelConfig::gpt_6_7b();
        let d = db(&model);
        // Beyond max_batch and max_seq of the coarse grid: finite clamp.
        let big = MicroBatchShape::gpt(512, 100_000);
        let v = d.layer_fwd(LayerKind::GptDecoder, &big);
        assert!(v.is_finite() && v > 0.0);
    }
}
