//! Execution-time and memory cost models for DynaPipe's planners.
//!
//! The paper (§3) builds cost models by *profiling* forward/backward time
//! and memory at power-of-two micro-batch sizes and sequence lengths, then
//! bridging gaps with linear interpolation. This crate reproduces that
//! machinery: [`profile`] samples the analytic hardware model (the
//! reproduction's stand-in for running kernels on a real GPU) on a geometric
//! grid, and [`grid`] provides the multilinear interpolation. [`CostModel`]
//! composes per-layer estimates into per-stage and per-micro-batch
//! estimates, and [`iteration`] implements the pipeline iteration-time
//! model of §4 (Eq. 1).
//!
//! The interpolation gap between grid points — plus the simulator's
//! execution-time jitter — is what separates the planner's estimates from
//! "measured" values, reproducing the prediction-error study of Fig. 18.

pub mod costmodel;
pub mod grid;
pub mod iteration;
pub mod profile;

pub use costmodel::{CostModel, ShapeBatch, ShapePricer};
pub use grid::{grid_query_stats, Axis, BatchQuery, GridQueryStats, NdGrid};
pub use iteration::{iteration_time, iteration_time_dp};
pub use profile::{ProfileDb, ProfileOptions};
