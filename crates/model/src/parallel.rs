//! 3D-parallelism configurations and pipeline stage layout.
//!
//! The paper grid-searches power-of-two combinations of data (DP), tensor
//! (TP) and pipeline (PP) parallelism, with tensor parallelism restricted to
//! a single node (§8). This module enumerates that grid and computes the
//! layer-to-stage assignment used by pipeline parallelism.

use crate::config::{ModelArch, ModelConfig};
use serde::{Deserialize, Serialize};

/// A (data, tensor, pipeline) parallelism configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Data-parallel degree: number of model replicas.
    pub dp: usize,
    /// Tensor-parallel degree: devices sharding each operator.
    pub tp: usize,
    /// Pipeline-parallel degree: number of pipeline stages.
    pub pp: usize,
}

impl ParallelConfig {
    /// Create a configuration, panicking on zero degrees.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    pub fn new(dp: usize, tp: usize, pp: usize) -> Self {
        assert!(
            dp > 0 && tp > 0 && pp > 0,
            "parallel degrees must be positive"
        );
        ParallelConfig { dp, tp, pp }
    }

    /// Total number of GPUs this configuration occupies.
    pub fn num_gpus(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// Enumerate all power-of-two (dp, tp, pp) combinations using exactly
    /// `num_gpus` GPUs, with tensor parallelism capped at `gpus_per_node`
    /// (TP is intra-node only, as in the paper's grid search).
    pub fn enumerate(num_gpus: usize, gpus_per_node: usize) -> Vec<ParallelConfig> {
        let mut out = Vec::new();
        let mut tp = 1;
        while tp <= num_gpus && tp <= gpus_per_node {
            let mut pp = 1;
            while tp * pp <= num_gpus {
                let rest = num_gpus / (tp * pp);
                if tp * pp * rest == num_gpus && rest.is_power_of_two() {
                    out.push(ParallelConfig { dp: rest, tp, pp });
                }
                pp *= 2;
            }
            tp *= 2;
        }
        out
    }

    /// Whether a model partitioned by this configuration has at least one
    /// transformer layer per pipeline stage.
    pub fn fits_model(&self, model: &ModelConfig) -> bool {
        model.total_layers() >= self.pp
    }
}

impl std::fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dp{}-tp{}-pp{}", self.dp, self.tp, self.pp)
    }
}

/// What kind of transformer layers a pipeline stage hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Decoder-only layers of a GPT-style model.
    DecoderOnly,
    /// Encoder layers of an encoder-decoder model.
    Encoder,
    /// Decoder layers of an encoder-decoder model (self + cross attention).
    Decoder,
    /// A stage straddling the encoder/decoder boundary of a T5-style model.
    Mixed,
}

/// Per-stage layer assignment for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageAssignment {
    /// Encoder layers hosted by this stage (0 for GPT).
    pub encoder_layers: usize,
    /// Decoder layers hosted by this stage (for GPT all layers count here).
    pub decoder_layers: usize,
    /// Whether this stage holds the input embedding (first stage).
    pub has_embedding: bool,
    /// Whether this stage holds the output head (last stage).
    pub has_lm_head: bool,
}

impl StageAssignment {
    /// Total transformer layers on this stage.
    pub fn total_layers(&self) -> usize {
        self.encoder_layers + self.decoder_layers
    }

    /// The kind of layers hosted, given the model architecture.
    pub fn kind(&self, arch: ModelArch) -> StageKind {
        match arch {
            ModelArch::Gpt => StageKind::DecoderOnly,
            ModelArch::T5 => match (self.encoder_layers > 0, self.decoder_layers > 0) {
                (true, true) => StageKind::Mixed,
                (true, false) => StageKind::Encoder,
                (false, true) => StageKind::Decoder,
                (false, false) => StageKind::Decoder, // degenerate; unreachable in practice
            },
        }
    }
}

/// The layer-to-stage layout of a pipeline-parallel model.
///
/// Layers are assigned contiguously and as evenly as possible: each of the
/// first `total_layers % pp` stages receives one extra layer, matching
/// Megatron-LM's uniform partitioning. For T5, the global layer order is all
/// encoder layers followed by all decoder layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageLayout {
    /// Per-stage assignments, indexed by stage id (0 = first stage).
    pub stages: Vec<StageAssignment>,
    /// Architecture of the partitioned model.
    pub arch: ModelArch,
}

impl StageLayout {
    /// Partition `model` into `pp` pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer layers than stages.
    pub fn new(model: &ModelConfig, pp: usize) -> Self {
        let total = model.total_layers();
        assert!(
            total >= pp,
            "cannot split {total} layers into {pp} pipeline stages"
        );
        let base = total / pp;
        let extra = total % pp;
        let enc_total = match model.arch {
            ModelArch::Gpt => 0,
            ModelArch::T5 => model.num_layers,
        };
        let mut stages = Vec::with_capacity(pp);
        let mut cursor = 0usize;
        for s in 0..pp {
            let n = base + usize::from(s < extra);
            let start = cursor;
            let end = cursor + n;
            cursor = end;
            let enc = end.min(enc_total).saturating_sub(start.min(enc_total));
            let dec = n - enc;
            stages.push(StageAssignment {
                encoder_layers: enc,
                decoder_layers: dec,
                has_embedding: s == 0,
                has_lm_head: s == pp - 1,
            });
        }
        StageLayout {
            stages,
            arch: model.arch,
        }
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The assignment for stage `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stage(&self, s: usize) -> &StageAssignment {
        &self.stages[s]
    }

    /// Maximum number of layers on any single stage (the pipeline's
    /// per-stage compute is governed by the heaviest stage).
    pub fn max_layers_per_stage(&self) -> usize {
        self.stages
            .iter()
            .map(StageAssignment::total_layers)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_covers_all_factorizations() {
        let configs = ParallelConfig::enumerate(8, 8);
        // dp*tp*pp = 8 with powers of two: (8,1,1),(4,2,1),(4,1,2),(2,4,1),
        // (2,2,2),(2,1,4),(1,8,1),(1,4,2),(1,2,4),(1,1,8) = 10 combos.
        assert_eq!(configs.len(), 10);
        for c in &configs {
            assert_eq!(c.num_gpus(), 8);
        }
    }

    #[test]
    fn enumerate_caps_tp_at_node_size() {
        let configs = ParallelConfig::enumerate(32, 8);
        assert!(configs.iter().all(|c| c.tp <= 8));
        assert!(configs
            .iter()
            .any(|c| c.pp == 32 / 8 / 1 * 8 / 2 || c.pp >= 1));
        // TP=16 would fit 32 GPUs but must be excluded.
        assert!(!configs.iter().any(|c| c.tp == 16));
    }

    #[test]
    fn layout_splits_gpt_evenly() {
        let model = ModelConfig::gpt_6_7b(); // 32 layers
        let layout = StageLayout::new(&model, 4);
        assert_eq!(layout.num_stages(), 4);
        for st in &layout.stages {
            assert_eq!(st.total_layers(), 8);
            assert_eq!(st.encoder_layers, 0);
            assert_eq!(st.kind(ModelArch::Gpt), StageKind::DecoderOnly);
        }
        assert!(layout.stage(0).has_embedding);
        assert!(layout.stage(3).has_lm_head);
        assert!(!layout.stage(1).has_embedding);
    }

    #[test]
    fn layout_splits_t5_encoder_then_decoder() {
        let model = ModelConfig::t5_11b(); // 24 + 24 layers
        let layout = StageLayout::new(&model, 4);
        assert_eq!(layout.stage(0).kind(ModelArch::T5), StageKind::Encoder);
        assert_eq!(layout.stage(1).kind(ModelArch::T5), StageKind::Encoder);
        assert_eq!(layout.stage(2).kind(ModelArch::T5), StageKind::Decoder);
        assert_eq!(layout.stage(3).kind(ModelArch::T5), StageKind::Decoder);
        let total: usize = layout.stages.iter().map(|s| s.total_layers()).sum();
        assert_eq!(total, 48);
    }

    #[test]
    fn layout_handles_mixed_stage() {
        let model = ModelConfig::t5_5_5b(); // 12 + 12 layers
        let layout = StageLayout::new(&model, 8); // 3 layers per stage
                                                  // Stage 3 holds layers 9..12 (encoder) and stage 4 holds 12..15
                                                  // (decoder); with 24 layers / 8 stages no stage straddles. Use 5
                                                  // stages to force a straddle: 24/5 -> 5,5,5,5,4.
        let layout5 = StageLayout::new(&model, 5);
        let kinds: Vec<_> = layout5
            .stages
            .iter()
            .map(|s| s.kind(ModelArch::T5))
            .collect();
        assert!(kinds.contains(&StageKind::Mixed));
        let total: usize = layout5.stages.iter().map(|s| s.total_layers()).sum();
        assert_eq!(total, 24);
        let _ = layout;
    }

    #[test]
    fn layout_uneven_distribution_front_loaded() {
        let model = ModelConfig::gpt_13b(); // 40 layers
        let layout = StageLayout::new(&model, 16);
        let counts: Vec<_> = layout.stages.iter().map(|s| s.total_layers()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 40);
        assert_eq!(counts[0], 3);
        assert_eq!(counts[15], 2);
        assert_eq!(layout.max_layers_per_stage(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn layout_rejects_more_stages_than_layers() {
        let model = ModelConfig::gpt_3_35b(); // 16 layers
        let _ = StageLayout::new(&model, 32);
    }
}
