//! Model, parallelism and hardware cost formulas for the DynaPipe reproduction.
//!
//! This crate is the analytical foundation of the reproduction. It provides:
//!
//! * [`config`] — transformer model configurations (GPT decoder-only and T5
//!   encoder-decoder) matching Table 1 of the paper, with parameter counting.
//! * [`parallel`] — 3D-parallelism configurations (data / tensor / pipeline)
//!   and the layer-to-stage assignment used by pipeline parallelism.
//! * [`hardware`] — an analytic model of an A100-40GB-like accelerator and its
//!   interconnects (NVSwitch intra-node, EFA inter-node). It substitutes for
//!   the paper's GPU profiling: transformer-layer FLOPs divided by an
//!   occupancy-dependent effective throughput, plus communication terms.
//! * [`memory`] — parameter / optimizer-state / activation memory formulas and
//!   the recomputation (activation checkpointing) variants of §7.
//! * [`shapes`] — micro-batch shapes (batch size, encoder/decoder sequence
//!   lengths) and the sizes of tensors communicated between pipeline stages.
//!
//! Everything downstream (cost models, the discrete-event simulator, the
//! planner) consumes these formulas, so the *same* ground truth drives both
//! the "measured" (simulated) numbers and the planner's estimates — exactly
//! the relationship the paper has between its testbed and its cost models.

pub mod config;
pub mod hardware;
pub mod memory;
pub mod parallel;
pub mod shapes;

pub use config::{ModelArch, ModelConfig};
pub use hardware::HardwareModel;
pub use memory::{MemoryModel, RecomputeMode};
pub use parallel::{ParallelConfig, StageKind, StageLayout};
pub use shapes::MicroBatchShape;

/// Microseconds, the time unit used throughout the reproduction.
pub type Micros = f64;

/// Bytes, the memory unit used throughout the reproduction.
pub type Bytes = u64;
