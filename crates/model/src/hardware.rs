//! Analytic model of an A100-40GB-like accelerator and its interconnects.
//!
//! This is the reproduction's stand-in for the paper's hardware testbed
//! (p4d.24xlarge: 8×A100 per node over NVSwitch, 400 Gbps EFA between
//! nodes). Kernel times are modelled as transformer-layer FLOPs divided by
//! an occupancy-dependent effective throughput plus a fixed per-layer launch
//! overhead; the quadratic attention term produces the super-linear
//! time-vs-sequence-length growth of the paper's Fig. 3, and the occupancy
//! curve produces the poor efficiency of small micro-batches that motivates
//! batching in the first place.
//!
//! Communication is modelled with α-β (latency + bandwidth) terms: point to
//! point for pipeline sends, ring all-reduce for tensor-parallel layer
//! collectives and data-parallel gradient synchronization.

use crate::config::{ModelArch, ModelConfig};
use crate::parallel::StageAssignment;
use crate::shapes::{MicroBatchShape, ACT_DTYPE_BYTES};
use crate::{Bytes, Micros};
use serde::{Deserialize, Serialize};

/// The kind of a single transformer layer, for FLOP accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// GPT decoder layer: causal self-attention over the full sequence.
    GptDecoder,
    /// T5 encoder layer: bidirectional self-attention over the input.
    T5Encoder,
    /// T5 decoder layer: causal self-attention over the target plus
    /// cross-attention from target to encoder output.
    T5Decoder,
}

/// Analytic hardware description. All bandwidths are in bytes/µs and all
/// rates in FLOPs/µs so that times come out in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Peak dense matmul throughput of one device (FLOPs/µs).
    pub peak_flops_per_us: f64,
    /// Maximum fraction of peak achievable by large GEMMs.
    pub max_efficiency: f64,
    /// Per-device work (FLOPs) at which efficiency reaches half of
    /// `max_efficiency`. Models occupancy: tiny micro-batches (or heavily
    /// tensor-parallel-sharded kernels) underutilize the device.
    pub efficiency_half_point_flops: f64,
    /// Fixed per-layer forward overhead (kernel launches, µs).
    pub layer_overhead_us: f64,
    /// Backward-to-forward compute ratio (2.0 for standard training).
    pub backward_ratio: f64,
    /// Effective device memory bandwidth (bytes/µs). Attention's
    /// score/softmax chain is memory-bound on the `s×s` matrix; this term
    /// is what makes long packed sequences disproportionately expensive
    /// (the paper's Fig. 3/4 motivation).
    pub mem_bw_bytes_per_us: f64,
    /// How many times the attention score matrix crosses HBM per forward
    /// pass (QKᵀ write, softmax read/write, dropout, P·V read — no
    /// FlashAttention in the paper's Megatron-LM baseline).
    pub attn_mem_passes: f64,
    /// Intra-node (NVSwitch) per-pair bandwidth, bytes/µs.
    pub intra_node_bw: f64,
    /// Inter-node (EFA) per-pair bandwidth, bytes/µs.
    pub inter_node_bw: f64,
    /// Intra-node link latency, µs.
    pub intra_node_latency_us: f64,
    /// Inter-node link latency, µs.
    pub inter_node_latency_us: f64,
    /// Usable device memory (bytes) after framework reservations.
    pub device_memory: Bytes,
    /// GPUs per node (tensor parallelism must stay within a node).
    pub gpus_per_node: usize,
}

impl HardwareModel {
    /// An A100-40GB p4d-like cluster node model, the paper's testbed.
    pub fn a100_cluster() -> Self {
        HardwareModel {
            // 312 TFLOP/s bf16 tensor-core peak.
            peak_flops_per_us: 312e6,
            max_efficiency: 0.52,
            // Half efficiency at ~5e10 FLOPs of per-device layer work
            // (~160 µs at peak): small kernels pay occupancy penalties.
            efficiency_half_point_flops: 5e10,
            layer_overhead_us: 45.0,
            backward_ratio: 2.0,
            // ~1.3 TB/s effective HBM2e bandwidth; ~12 score-matrix passes
            // (QK^T write, fp32 softmax read/write, dropout mask, P*V read,
            // plus the attention-internal reads the backward re-issues).
            mem_bw_bytes_per_us: 1.3e6,
            attn_mem_passes: 12.0,
            // ~300 GB/s effective NVSwitch per pair; ~12.5 GB/s per pair EFA.
            intra_node_bw: 300e3,
            inter_node_bw: 12.5e3,
            intra_node_latency_us: 8.0,
            inter_node_latency_us: 28.0,
            // 40 GB minus ~4 GB framework/NCCL reservations.
            device_memory: 36_000_000_000,
            gpus_per_node: 8,
        }
    }

    /// A deliberately small toy device for fast tests.
    pub fn toy() -> Self {
        HardwareModel {
            peak_flops_per_us: 1e6,
            max_efficiency: 0.5,
            efficiency_half_point_flops: 5e7,
            layer_overhead_us: 10.0,
            backward_ratio: 2.0,
            mem_bw_bytes_per_us: 1e4,
            attn_mem_passes: 8.0,
            intra_node_bw: 10e3,
            inter_node_bw: 1e3,
            intra_node_latency_us: 5.0,
            inter_node_latency_us: 20.0,
            device_memory: 2_000_000_000,
            gpus_per_node: 4,
        }
    }

    // ----- compute ---------------------------------------------------------

    /// Forward FLOPs of one transformer layer (whole layer, before tensor
    /// parallel sharding) for a micro-batch of the given shape.
    ///
    /// Attention score/context terms are quadratic in sequence length; causal
    /// attention (GPT and the T5 decoder's self-attention) only computes the
    /// lower triangle and gets a 1/2 factor.
    pub fn layer_flops_fwd(
        &self,
        model: &ModelConfig,
        kind: LayerKind,
        shape: &MicroBatchShape,
    ) -> f64 {
        let b = shape.batch_size as f64;
        let h = model.hidden_dim as f64;
        let a = model.attn_dim() as f64;
        let f = model.ffn_dim as f64;
        let se = shape.enc_len as f64;
        let sd = shape.dec_len as f64;
        let proj = |tokens: f64| 8.0 * b * tokens * h * a; // QKV + output projections
        let scores = |q: f64, k: f64, causal: bool| {
            let full = 4.0 * b * q * k * a; // QK^T + attn·V
            if causal {
                full * 0.5
            } else {
                full
            }
        };
        let mlp = |tokens: f64| 4.0 * b * tokens * h * f;
        match kind {
            LayerKind::GptDecoder => proj(se) + scores(se, se, true) + mlp(se),
            LayerKind::T5Encoder => proj(se) + scores(se, se, false) + mlp(se),
            LayerKind::T5Decoder => {
                // Self-attention over the target plus cross-attention
                // (queries from target, keys/values from encoder output).
                proj(sd)
                    + scores(sd, sd, true)
                    + proj(sd) * 0.5 // cross-attn Q + output proj (K/V amortized)
                    + scores(sd, se, false)
                    + mlp(sd)
            }
        }
    }

    /// FLOPs of the output head (logit projection) over the target tokens.
    pub fn lm_head_flops(&self, model: &ModelConfig, shape: &MicroBatchShape) -> f64 {
        let tokens = match model.arch {
            ModelArch::Gpt => shape.batch_size as f64 * shape.enc_len as f64,
            ModelArch::T5 => shape.batch_size as f64 * shape.dec_len as f64,
        };
        2.0 * tokens * model.hidden_dim as f64 * model.vocab_size as f64
    }

    /// Occupancy-dependent effective FLOP rate for `work_flops` of
    /// per-device work.
    ///
    /// Tensor parallelism splits each GEMM across devices, shrinking the
    /// per-device work and thus the achieved efficiency — which is how the
    /// model captures TP's sub-linear compute speedup.
    pub fn effective_flops(&self, work_flops: f64) -> f64 {
        let eff =
            self.max_efficiency * work_flops / (work_flops + self.efficiency_half_point_flops);
        self.peak_flops_per_us * eff.max(1e-4)
    }

    /// Memory-bound time of one layer's attention score/softmax chain: the
    /// `b × heads × s_q × s_kv` matrix crosses HBM `attn_mem_passes` times
    /// per forward (heads shard across tensor parallelism).
    pub fn attn_membound_time_fwd(
        &self,
        model: &ModelConfig,
        kind: LayerKind,
        shape: &MicroBatchShape,
        tp: usize,
    ) -> Micros {
        if shape.batch_size == 0 {
            return 0.0;
        }
        let b = shape.batch_size as f64;
        let heads = model.num_heads as f64;
        let (s_q, s_kv, causal) = match kind {
            LayerKind::GptDecoder => (shape.enc_len as f64, shape.enc_len as f64, true),
            LayerKind::T5Encoder => (shape.enc_len as f64, shape.enc_len as f64, false),
            LayerKind::T5Decoder => (
                shape.dec_len as f64,
                (shape.dec_len + shape.enc_len) as f64,
                false,
            ),
        };
        let mut bytes =
            b * heads * s_q * s_kv * ACT_DTYPE_BYTES as f64 * self.attn_mem_passes / tp as f64;
        if causal {
            bytes *= 0.5;
        }
        bytes / self.mem_bw_bytes_per_us
    }

    /// Forward execution time of one layer on one device under tensor
    /// parallelism `tp`: GEMM time at the occupancy-dependent rate, plus
    /// the memory-bound attention term, plus per-layer tensor-parallel
    /// all-reduces.
    pub fn layer_time_fwd(
        &self,
        model: &ModelConfig,
        kind: LayerKind,
        shape: &MicroBatchShape,
        tp: usize,
    ) -> Micros {
        if shape.batch_size == 0 {
            return 0.0;
        }
        let flops = self.layer_flops_fwd(model, kind, shape) / tp as f64;
        let compute = flops / self.effective_flops(flops) + self.layer_overhead_us;
        compute
            + self.attn_membound_time_fwd(model, kind, shape, tp)
            + self.tp_allreduce_time(model, kind, shape, tp)
    }

    /// Backward execution time of one layer (≈2× forward compute plus the
    /// same collectives).
    pub fn layer_time_bwd(
        &self,
        model: &ModelConfig,
        kind: LayerKind,
        shape: &MicroBatchShape,
        tp: usize,
    ) -> Micros {
        if shape.batch_size == 0 {
            return 0.0;
        }
        let flops = self.backward_ratio * self.layer_flops_fwd(model, kind, shape) / tp as f64;
        let compute = flops / self.effective_flops(flops) + self.layer_overhead_us;
        compute
            + self.backward_ratio
                * (self.attn_membound_time_fwd(model, kind, shape, tp)
                    + self.tp_allreduce_time(model, kind, shape, tp))
    }

    /// Forward time of an entire pipeline stage (its encoder and decoder
    /// layers plus embedding/LM-head work where present).
    pub fn stage_time_fwd(
        &self,
        model: &ModelConfig,
        stage: &StageAssignment,
        shape: &MicroBatchShape,
        tp: usize,
    ) -> Micros {
        let mut t = 0.0;
        let (enc_kind, dec_kind) = self.stage_layer_kinds(model);
        if stage.encoder_layers > 0 {
            t += stage.encoder_layers as f64 * self.layer_time_fwd(model, enc_kind, shape, tp);
        }
        if stage.decoder_layers > 0 {
            t += stage.decoder_layers as f64 * self.layer_time_fwd(model, dec_kind, shape, tp);
        }
        if stage.has_lm_head && shape.batch_size > 0 {
            let flops = self.lm_head_flops(model, shape) / tp as f64;
            t += flops / self.effective_flops(flops);
        }
        t
    }

    /// Backward time of an entire pipeline stage.
    pub fn stage_time_bwd(
        &self,
        model: &ModelConfig,
        stage: &StageAssignment,
        shape: &MicroBatchShape,
        tp: usize,
    ) -> Micros {
        let mut t = 0.0;
        let (enc_kind, dec_kind) = self.stage_layer_kinds(model);
        if stage.encoder_layers > 0 {
            t += stage.encoder_layers as f64 * self.layer_time_bwd(model, enc_kind, shape, tp);
        }
        if stage.decoder_layers > 0 {
            t += stage.decoder_layers as f64 * self.layer_time_bwd(model, dec_kind, shape, tp);
        }
        if stage.has_lm_head && shape.batch_size > 0 {
            let flops = self.backward_ratio * self.lm_head_flops(model, shape) / tp as f64;
            t += flops / self.effective_flops(flops);
        }
        t
    }

    fn stage_layer_kinds(&self, model: &ModelConfig) -> (LayerKind, LayerKind) {
        match model.arch {
            ModelArch::Gpt => (LayerKind::GptDecoder, LayerKind::GptDecoder),
            ModelArch::T5 => (LayerKind::T5Encoder, LayerKind::T5Decoder),
        }
    }

    fn layer_tokens(&self, kind: LayerKind, shape: &MicroBatchShape) -> f64 {
        let b = shape.batch_size as f64;
        match kind {
            LayerKind::GptDecoder | LayerKind::T5Encoder => b * shape.enc_len as f64,
            LayerKind::T5Decoder => b * shape.dec_len.max(1) as f64,
        }
    }

    // ----- communication ---------------------------------------------------

    /// Point-to-point transfer time for `bytes` between two devices.
    pub fn p2p_time(&self, bytes: Bytes, same_node: bool) -> Micros {
        let (bw, lat) = if same_node {
            (self.intra_node_bw, self.intra_node_latency_us)
        } else {
            (self.inter_node_bw, self.inter_node_latency_us)
        };
        lat + bytes as f64 / bw
    }

    /// Ring all-reduce time for `bytes` over `n` devices.
    pub fn allreduce_time(&self, bytes: Bytes, n: usize, same_node: bool) -> Micros {
        if n <= 1 {
            return 0.0;
        }
        let (bw, lat) = if same_node {
            (self.intra_node_bw, self.intra_node_latency_us)
        } else {
            (self.inter_node_bw, self.inter_node_latency_us)
        };
        let nf = n as f64;
        2.0 * (nf - 1.0) * lat + 2.0 * (nf - 1.0) / nf * bytes as f64 / bw
    }

    /// Per-layer tensor-parallel all-reduce time in the forward pass (two
    /// all-reduces per transformer layer: attention output and MLP output).
    pub fn tp_allreduce_time(
        &self,
        model: &ModelConfig,
        kind: LayerKind,
        shape: &MicroBatchShape,
        tp: usize,
    ) -> Micros {
        if tp <= 1 {
            return 0.0;
        }
        let tokens = self.layer_tokens(kind, shape);
        let bytes = (tokens * model.hidden_dim as f64 * ACT_DTYPE_BYTES as f64) as u64;
        2.0 * self.allreduce_time(bytes, tp, true)
    }

    /// Data-parallel gradient all-reduce time at the end of an iteration for
    /// a stage holding `stage_params` parameters, replicated `dp` ways.
    ///
    /// `spans_nodes` is true when replicas live on different nodes.
    pub fn dp_gradient_sync_time(&self, stage_params: u64, dp: usize, spans_nodes: bool) -> Micros {
        if dp <= 1 {
            return 0.0;
        }
        // Gradients are reduced in fp32 (4 bytes) bucketed into chunks.
        self.allreduce_time(stage_params * 4, dp, !spans_nodes)
    }

    /// Whether devices `a` and `b` (global ranks) are on the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        a / self.gpus_per_node == b / self.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t5_shape(b: usize, s: usize) -> MicroBatchShape {
        MicroBatchShape::t5(b, s, s / 4)
    }

    #[test]
    fn layer_time_superlinear_in_seq_len_fig3() {
        // Fig. 3: T5-11B encoder layer time grows super-linearly with s.
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::t5_11b();
        let time_at = |s: usize| {
            let shape = MicroBatchShape::t5(1, s, 1);
            hw.layer_time_fwd(&model, LayerKind::T5Encoder, &shape, 1)
        };
        // 16x the sequence length must cost well over 16x the time overall.
        assert!(time_at(8192) / time_at(512) > 20.0);
        // And in the long-sequence regime every doubling more than doubles.
        assert!(time_at(8192) / time_at(4096) > 2.0);
        assert!(time_at(4096) / time_at(2048) > 2.0);
    }

    #[test]
    fn gpt_model_throughput_order_of_magnitude() {
        // A 2048-token micro-batch through all 32 layers of GPT-6.7B should
        // take single-digit-to-tens of ms per layer set — the regime that
        // yields the paper's ~20-30k tokens/s on 8 GPUs.
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::gpt_6_7b();
        let shape = MicroBatchShape::gpt(1, 2048);
        let per_layer = hw.layer_time_fwd(&model, LayerKind::GptDecoder, &shape, 1);
        let full_fwd_ms = per_layer * 32.0 / 1000.0;
        assert!(
            (20.0..700.0).contains(&full_fwd_ms),
            "full forward {full_fwd_ms} ms out of plausible range"
        );
    }

    #[test]
    fn small_batches_are_inefficient() {
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::gpt_6_7b();
        let t1 = hw.layer_time_fwd(
            &model,
            LayerKind::GptDecoder,
            &MicroBatchShape::gpt(1, 128),
            1,
        );
        let t16 = hw.layer_time_fwd(
            &model,
            LayerKind::GptDecoder,
            &MicroBatchShape::gpt(16, 128),
            1,
        );
        // 16x the work in far less than 16x the time.
        assert!(t16 < t1 * 10.0, "t16={t16} t1={t1}");
    }

    #[test]
    fn tensor_parallel_reduces_compute_time_but_adds_comm() {
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::gpt_6_7b();
        let shape = MicroBatchShape::gpt(4, 2048);
        let t1 = hw.layer_time_fwd(&model, LayerKind::GptDecoder, &shape, 1);
        let t4 = hw.layer_time_fwd(&model, LayerKind::GptDecoder, &shape, 4);
        assert!(t4 < t1, "tp should speed up a large layer");
        assert!(
            t4 > t1 / 4.0,
            "tp speedup must be sub-linear (comm overhead)"
        );
    }

    #[test]
    fn backward_costs_about_twice_forward() {
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::t5_11b();
        let shape = t5_shape(4, 1024);
        let f = hw.layer_time_fwd(&model, LayerKind::T5Encoder, &shape, 1);
        let b = hw.layer_time_bwd(&model, LayerKind::T5Encoder, &shape, 1);
        let ratio = b / f;
        assert!((1.5..2.5).contains(&ratio), "bwd/fwd ratio {ratio}");
    }

    #[test]
    fn empty_shape_costs_nothing() {
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::gpt_6_7b();
        let shape = MicroBatchShape::empty();
        assert_eq!(
            hw.layer_time_fwd(&model, LayerKind::GptDecoder, &shape, 1),
            0.0
        );
        assert_eq!(
            hw.layer_time_bwd(&model, LayerKind::GptDecoder, &shape, 1),
            0.0
        );
    }

    #[test]
    fn p2p_inter_node_slower_than_intra() {
        let hw = HardwareModel::a100_cluster();
        let intra = hw.p2p_time(1 << 24, true);
        let inter = hw.p2p_time(1 << 24, false);
        assert!(inter > 5.0 * intra);
    }

    #[test]
    fn allreduce_scales_with_participants() {
        let hw = HardwareModel::a100_cluster();
        assert_eq!(hw.allreduce_time(1 << 20, 1, true), 0.0);
        let t2 = hw.allreduce_time(1 << 24, 2, true);
        let t8 = hw.allreduce_time(1 << 24, 8, true);
        assert!(t8 > t2);
        // The bandwidth term approaches 2*S/bw, so growth stays bounded even
        // though the latency term is linear in n.
        assert!(t8 < 4.0 * t2);
    }

    #[test]
    fn same_node_by_rank() {
        let hw = HardwareModel::a100_cluster();
        assert!(hw.same_node(0, 7));
        assert!(!hw.same_node(7, 8));
        assert!(hw.same_node(8, 15));
    }

    #[test]
    fn t5_decoder_layer_costs_include_cross_attention() {
        let hw = HardwareModel::a100_cluster();
        let model = ModelConfig::t5_11b();
        // Long encoder context inflates decoder cost via cross-attention.
        let short_ctx = MicroBatchShape::t5(2, 128, 256);
        let long_ctx = MicroBatchShape::t5(2, 4096, 256);
        let t_short = hw.layer_flops_fwd(&model, LayerKind::T5Decoder, &short_ctx);
        let t_long = hw.layer_flops_fwd(&model, LayerKind::T5Decoder, &long_ctx);
        assert!(t_long > 1.5 * t_short);
    }
}
