//! Micro-batch shapes and the sizes of tensors exchanged between stages.
//!
//! A micro-batch is fully described (for cost purposes) by its batch size and
//! padded sequence lengths. GPT samples have a single sequence length; T5
//! samples carry an (encoder, decoder) pair. DynaPipe includes communicated
//! tensor shapes in its execution plans so executors never exchange shape
//! metadata at runtime (§6) — [`MicroBatchShape`] is what gets embedded.

use crate::config::ModelArch;
use crate::parallel::StageKind;
use crate::Bytes;
use serde::{Deserialize, Serialize};

/// Bytes per activation element (bf16 training).
pub const ACT_DTYPE_BYTES: u64 = 2;

/// The shape of one micro-batch: sample count and padded sequence lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroBatchShape {
    /// Number of samples in the micro-batch.
    pub batch_size: usize,
    /// Padded encoder (input) sequence length. For GPT this is the single
    /// padded sequence length (prompt and target concatenated).
    pub enc_len: usize,
    /// Padded decoder (target) sequence length. Zero for GPT.
    pub dec_len: usize,
}

impl MicroBatchShape {
    /// Shape of a decoder-only (GPT) micro-batch.
    pub fn gpt(batch_size: usize, seq_len: usize) -> Self {
        MicroBatchShape {
            batch_size,
            enc_len: seq_len,
            dec_len: 0,
        }
    }

    /// Shape of an encoder-decoder (T5) micro-batch.
    pub fn t5(batch_size: usize, enc_len: usize, dec_len: usize) -> Self {
        MicroBatchShape {
            batch_size,
            enc_len,
            dec_len,
        }
    }

    /// Empty shape (zero samples). Useful as an accumulator identity.
    pub fn empty() -> Self {
        MicroBatchShape {
            batch_size: 0,
            enc_len: 0,
            dec_len: 0,
        }
    }

    /// Total padded tokens processed for this micro-batch (batch × lengths).
    pub fn padded_tokens(&self) -> u64 {
        self.batch_size as u64 * (self.enc_len + self.dec_len) as u64
    }

    /// Tokens per sample after padding.
    pub fn tokens_per_sample(&self) -> usize {
        self.enc_len + self.dec_len
    }

    /// Bytes of the activation tensor leaving a stage of the given kind,
    /// headed to the next pipeline stage.
    ///
    /// Encoder-only stages forward only the (batch × enc_len × hidden)
    /// activation. Once the decoder is involved (decoder, mixed or
    /// decoder-only stages), the encoder output must travel along for
    /// cross-attention, so both sequence extents are counted.
    pub fn boundary_activation_bytes(&self, kind: StageKind, hidden_dim: usize) -> Bytes {
        let tokens: u64 = match kind {
            StageKind::Encoder => self.batch_size as u64 * self.enc_len as u64,
            StageKind::DecoderOnly => self.batch_size as u64 * self.enc_len as u64,
            StageKind::Decoder | StageKind::Mixed => {
                self.batch_size as u64 * (self.enc_len + self.dec_len) as u64
            }
        };
        tokens * hidden_dim as u64 * ACT_DTYPE_BYTES
    }

    /// Whether this shape is valid for the given architecture (GPT shapes
    /// must have a zero decoder length; T5 shapes a positive one when they
    /// contain samples).
    pub fn valid_for(&self, arch: ModelArch) -> bool {
        if self.batch_size == 0 {
            return true;
        }
        match arch {
            ModelArch::Gpt => self.dec_len == 0 && self.enc_len > 0,
            ModelArch::T5 => self.enc_len > 0 && self.dec_len > 0,
        }
    }
}

impl std::fmt::Display for MicroBatchShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.dec_len == 0 {
            write!(f, "[{}x{}]", self.batch_size, self.enc_len)
        } else {
            write!(
                f,
                "[{}x({},{})]",
                self.batch_size, self.enc_len, self.dec_len
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_tokens_counts_both_sequences() {
        let s = MicroBatchShape::t5(4, 512, 128);
        assert_eq!(s.padded_tokens(), 4 * 640);
        let g = MicroBatchShape::gpt(8, 1024);
        assert_eq!(g.padded_tokens(), 8 * 1024);
    }

    #[test]
    fn boundary_bytes_depend_on_stage_kind() {
        let s = MicroBatchShape::t5(2, 1000, 200);
        let enc = s.boundary_activation_bytes(StageKind::Encoder, 1024);
        let dec = s.boundary_activation_bytes(StageKind::Decoder, 1024);
        assert_eq!(enc, 2 * 1000 * 1024 * ACT_DTYPE_BYTES);
        assert_eq!(dec, 2 * 1200 * 1024 * ACT_DTYPE_BYTES);
        assert!(dec > enc);
    }

    #[test]
    fn validity_per_architecture() {
        assert!(MicroBatchShape::gpt(1, 32).valid_for(ModelArch::Gpt));
        assert!(!MicroBatchShape::gpt(1, 32).valid_for(ModelArch::T5));
        assert!(MicroBatchShape::t5(1, 32, 8).valid_for(ModelArch::T5));
        assert!(!MicroBatchShape::t5(1, 32, 8).valid_for(ModelArch::Gpt));
        assert!(MicroBatchShape::empty().valid_for(ModelArch::Gpt));
        assert!(MicroBatchShape::empty().valid_for(ModelArch::T5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(MicroBatchShape::gpt(4, 512).to_string(), "[4x512]");
        assert_eq!(MicroBatchShape::t5(4, 512, 64).to_string(), "[4x(512,64)]");
    }
}
