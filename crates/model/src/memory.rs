//! Memory formulas: model states, activations and recomputation variants.
//!
//! Peak device memory during pipeline training is static model state
//! (weights, gradients, optimizer states — ZeRO-1 shards the latter across
//! data-parallel replicas, matching the paper's Megatron-LM + DeepSpeed
//! setup) plus the activations accumulated for in-flight micro-batches.
//! Activation checkpointing (§7 "dynamic recomputation") trades activation
//! memory for recomputed forward time; DynaPipe picks the cheapest mode that
//! fits per iteration.

use crate::config::{ModelArch, ModelConfig};
use crate::hardware::{HardwareModel, LayerKind};
use crate::parallel::StageAssignment;
use crate::shapes::{MicroBatchShape, ACT_DTYPE_BYTES};
use crate::{Bytes, Micros};
use serde::{Deserialize, Serialize};

/// Activation checkpointing (recomputation) mode for a training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecomputeMode {
    /// Store every intermediate activation; no recomputation.
    None,
    /// Megatron-style selective recomputation: drop the quadratic attention
    /// score/softmax tensors and recompute them in the backward pass.
    Selective,
    /// Full recomputation: store only each layer's input and re-run the
    /// whole forward during backward.
    Full,
}

impl RecomputeMode {
    /// All modes, cheapest (in time) first — the order in which the planner
    /// tries them (§7).
    pub const ALL: [RecomputeMode; 3] = [
        RecomputeMode::None,
        RecomputeMode::Selective,
        RecomputeMode::Full,
    ];

    /// Short label for logs and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RecomputeMode::None => "none",
            RecomputeMode::Selective => "selective",
            RecomputeMode::Full => "full",
        }
    }
}

/// Memory model bound to a hardware description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Bytes per parameter for weights (bf16).
    pub weight_bytes_per_param: f64,
    /// Bytes per parameter for gradients (fp32 accumulation).
    pub grad_bytes_per_param: f64,
    /// Bytes per parameter for optimizer states before ZeRO sharding
    /// (fp32 master copy + Adam first/second moments).
    pub optimizer_bytes_per_param: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            weight_bytes_per_param: 2.0,
            grad_bytes_per_param: 4.0,
            optimizer_bytes_per_param: 12.0,
        }
    }
}

impl MemoryModel {
    /// Parameters held by one pipeline stage after tensor-parallel sharding.
    pub fn stage_params(&self, model: &ModelConfig, stage: &StageAssignment, tp: usize) -> u64 {
        let mut p = stage.encoder_layers as u64 * model.encoder_layer_params()
            + stage.decoder_layers as u64 * model.decoder_layer_params();
        if stage.has_embedding {
            p += model.embedding_params();
        }
        if stage.has_lm_head && !stage.has_embedding {
            // Output head weights are tied to the embedding; they only cost
            // extra storage when embedding and head live on different stages.
            p += model.embedding_params();
        }
        p / tp as u64
    }

    /// Static (per-iteration-constant) memory of one stage: weights,
    /// gradients and ZeRO-1-sharded optimizer states.
    pub fn static_stage_bytes(
        &self,
        model: &ModelConfig,
        stage: &StageAssignment,
        tp: usize,
        dp: usize,
    ) -> Bytes {
        let p = self.stage_params(model, stage, tp) as f64;
        let per_param = self.weight_bytes_per_param
            + self.grad_bytes_per_param
            + self.optimizer_bytes_per_param / dp as f64;
        (p * per_param) as Bytes
    }

    /// Activation bytes one layer must keep for the backward pass of a
    /// micro-batch, under the given recomputation mode. Activations are
    /// sharded by tensor parallelism.
    pub fn layer_activation_bytes(
        &self,
        model: &ModelConfig,
        kind: LayerKind,
        shape: &MicroBatchShape,
        mode: RecomputeMode,
        tp: usize,
    ) -> Bytes {
        if shape.batch_size == 0 {
            return 0;
        }
        let b = shape.batch_size as u64;
        let h = model.hidden_dim as u64;
        let a = model.attn_dim() as u64;
        let f = model.ffn_dim as u64;
        let heads = model.num_heads as u64;
        let d = ACT_DTYPE_BYTES;
        let (s_q, s_kv, causal) = match kind {
            LayerKind::GptDecoder => (shape.enc_len as u64, shape.enc_len as u64, true),
            LayerKind::T5Encoder => (shape.enc_len as u64, shape.enc_len as u64, false),
            LayerKind::T5Decoder => (shape.dec_len as u64, shape.enc_len as u64, false),
        };
        let linear = match mode {
            // Inputs of each linear/norm op: layer input + QKV + attention
            // context + MLP intermediates.
            RecomputeMode::None | RecomputeMode::Selective => b * s_q * (3 * h + 4 * a + 2 * f) * d,
            RecomputeMode::Full => b * s_q * h * d,
        };
        let scores = match mode {
            RecomputeMode::None => {
                let full = 2 * b * heads * s_q * s_kv * d; // scores + softmax
                if causal {
                    full / 2
                } else {
                    full
                }
            }
            RecomputeMode::Selective | RecomputeMode::Full => 0,
        };
        (linear + scores) / tp as u64
    }

    /// Activation bytes an entire stage must hold for one in-flight
    /// micro-batch, under the given recomputation mode.
    pub fn stage_activation_bytes(
        &self,
        model: &ModelConfig,
        stage: &StageAssignment,
        shape: &MicroBatchShape,
        mode: RecomputeMode,
        tp: usize,
    ) -> Bytes {
        let (enc_kind, dec_kind) = match model.arch {
            ModelArch::Gpt => (LayerKind::GptDecoder, LayerKind::GptDecoder),
            ModelArch::T5 => (LayerKind::T5Encoder, LayerKind::T5Decoder),
        };
        let mut bytes = stage.encoder_layers as u64
            * self.layer_activation_bytes(model, enc_kind, shape, mode, tp)
            + stage.decoder_layers as u64
                * self.layer_activation_bytes(model, dec_kind, shape, mode, tp);
        // The stage input itself is always retained until backward.
        bytes += shape.padded_tokens() * model.hidden_dim as u64 * ACT_DTYPE_BYTES / tp as u64;
        bytes
    }

    /// Extra *forward-equivalent* time the backward pass of one stage pays
    /// to recompute discarded activations.
    pub fn recompute_extra_time(
        &self,
        hw: &HardwareModel,
        model: &ModelConfig,
        stage: &StageAssignment,
        shape: &MicroBatchShape,
        mode: RecomputeMode,
        tp: usize,
    ) -> Micros {
        match mode {
            RecomputeMode::None => 0.0,
            RecomputeMode::Full => hw.stage_time_fwd(model, stage, shape, tp),
            RecomputeMode::Selective => {
                // Recompute only the attention score/softmax/context chain:
                // the quadratic term of each layer.
                if shape.batch_size == 0 {
                    return 0.0;
                }
                let (enc_kind, dec_kind) = match model.arch {
                    ModelArch::Gpt => (LayerKind::GptDecoder, LayerKind::GptDecoder),
                    ModelArch::T5 => (LayerKind::T5Encoder, LayerKind::T5Decoder),
                };
                let mut flops = 0.0;
                let mut membound = 0.0;
                for (kind, layers) in [
                    (enc_kind, stage.encoder_layers),
                    (dec_kind, stage.decoder_layers),
                ] {
                    if layers == 0 {
                        continue;
                    }
                    let b = shape.batch_size as f64;
                    let a = model.attn_dim() as f64;
                    let (s_q, s_kv, causal) = match kind {
                        LayerKind::GptDecoder => (shape.enc_len as f64, shape.enc_len as f64, true),
                        LayerKind::T5Encoder => (shape.enc_len as f64, shape.enc_len as f64, false),
                        LayerKind::T5Decoder => (shape.dec_len as f64, shape.enc_len as f64, false),
                    };
                    let mut score_flops = 4.0 * b * s_q * s_kv * a;
                    if causal {
                        score_flops *= 0.5;
                    }
                    flops += layers as f64 * score_flops;
                    // Recomputing attention repeats its memory-bound pass.
                    membound += layers as f64 * hw.attn_membound_time_fwd(model, kind, shape, tp);
                }
                let per_device = flops / tp as f64;
                per_device / hw.effective_flops(per_device) + membound
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::StageLayout;

    fn gpt_stage() -> (ModelConfig, StageAssignment) {
        let model = ModelConfig::gpt_6_7b();
        let layout = StageLayout::new(&model, 4);
        (model, *layout.stage(1))
    }

    #[test]
    fn recompute_modes_strictly_reduce_activation_memory() {
        let (model, stage) = gpt_stage();
        let mm = MemoryModel::default();
        let shape = MicroBatchShape::gpt(4, 2048);
        let none = mm.stage_activation_bytes(&model, &stage, &shape, RecomputeMode::None, 1);
        let sel = mm.stage_activation_bytes(&model, &stage, &shape, RecomputeMode::Selective, 1);
        let full = mm.stage_activation_bytes(&model, &stage, &shape, RecomputeMode::Full, 1);
        assert!(none > sel, "none {none} should exceed selective {sel}");
        assert!(sel > full, "selective {sel} should exceed full {full}");
    }

    #[test]
    fn recompute_modes_strictly_increase_time() {
        let (model, stage) = gpt_stage();
        let mm = MemoryModel::default();
        let hw = HardwareModel::a100_cluster();
        let shape = MicroBatchShape::gpt(4, 2048);
        let none = mm.recompute_extra_time(&hw, &model, &stage, &shape, RecomputeMode::None, 1);
        let sel = mm.recompute_extra_time(&hw, &model, &stage, &shape, RecomputeMode::Selective, 1);
        let full = mm.recompute_extra_time(&hw, &model, &stage, &shape, RecomputeMode::Full, 1);
        assert_eq!(none, 0.0);
        assert!(sel > 0.0);
        assert!(full > sel);
        // Selective recomputation must cost less than a full extra forward.
        let fwd = hw.stage_time_fwd(&model, &stage, &shape, 1);
        assert!(sel < 0.5 * fwd);
        assert!((full - fwd).abs() < 1e-6);
    }

    #[test]
    fn score_memory_quadratic_in_sequence_length() {
        let (model, stage) = gpt_stage();
        let mm = MemoryModel::default();
        let short = MicroBatchShape::gpt(1, 1024);
        let long = MicroBatchShape::gpt(1, 4096);
        let mem = |s| mm.stage_activation_bytes(&model, &stage, s, RecomputeMode::None, 1) as f64;
        let mem_sel =
            |s| mm.stage_activation_bytes(&model, &stage, s, RecomputeMode::Selective, 1) as f64;
        // With scores stored, 4x longer sequence costs much more than 4x.
        assert!(mem(&long) / mem(&short) > 5.0);
        // Without scores, growth is linear.
        let lin_ratio = mem_sel(&long) / mem_sel(&short);
        assert!((3.5..4.5).contains(&lin_ratio), "ratio {lin_ratio}");
    }

    #[test]
    fn zero_shards_optimizer_states_across_dp() {
        let (model, stage) = gpt_stage();
        let mm = MemoryModel::default();
        let dp1 = mm.static_stage_bytes(&model, &stage, 1, 1);
        let dp4 = mm.static_stage_bytes(&model, &stage, 1, 4);
        assert!(dp4 < dp1);
        // Weights + grads (6 B/param) are not sharded; optimizer (12) is.
        let p = mm.stage_params(&model, &stage, 1) as f64;
        let expect_dp4 = p * (2.0 + 4.0 + 12.0 / 4.0);
        assert!((dp4 as f64 - expect_dp4).abs() / expect_dp4 < 1e-9);
    }

    #[test]
    fn tensor_parallel_shards_params_and_activations() {
        let (model, stage) = gpt_stage();
        let mm = MemoryModel::default();
        let shape = MicroBatchShape::gpt(4, 2048);
        assert!(mm.stage_params(&model, &stage, 4) <= mm.stage_params(&model, &stage, 1) / 4 + 1);
        let a1 = mm.stage_activation_bytes(&model, &stage, &shape, RecomputeMode::None, 1);
        let a4 = mm.stage_activation_bytes(&model, &stage, &shape, RecomputeMode::None, 4);
        assert!(a4 * 3 < a1, "activations should shrink ~4x under tp=4");
    }

    #[test]
    fn first_stage_carries_embedding_memory() {
        let model = ModelConfig::gpt_6_7b();
        let layout = StageLayout::new(&model, 4);
        let mm = MemoryModel::default();
        let first = mm.stage_params(&model, layout.stage(0), 1);
        let mid = mm.stage_params(&model, layout.stage(1), 1);
        assert!(first > mid);
        assert_eq!(
            first - mid,
            model.embedding_params(),
            "difference should be exactly the embedding table"
        );
    }

    #[test]
    fn static_memory_fits_a100_for_paper_configs() {
        // GPT-6.7B on 8 GPUs with tp=2, pp=2, dp=2 must leave activation
        // headroom on a 40 GB device — otherwise the paper's experiments
        // could not have run.
        let model = ModelConfig::gpt_6_7b();
        let layout = StageLayout::new(&model, 2);
        let mm = MemoryModel::default();
        let hw = HardwareModel::a100_cluster();
        let stat = mm.static_stage_bytes(&model, layout.stage(0), 2, 2);
        assert!(
            stat < hw.device_memory * 3 / 4,
            "static {stat} leaves no activation room"
        );
    }
}
