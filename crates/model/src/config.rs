//! Transformer model configurations matching Table 1 of the paper.
//!
//! The paper evaluates a decoder-only GPT family (scaled per the GPT-3 paper)
//! and an encoder-decoder T5 family (T5-11B scaled in depth). For T5,
//! "`num_layers`" counts layers present in *each* of the encoder and the
//! decoder, mirroring the paper's convention.

use serde::{Deserialize, Serialize};

/// Transformer architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelArch {
    /// Decoder-only causal language model (GPT). Samples have a single
    /// sequence length (prompt and target concatenated).
    Gpt,
    /// Encoder-decoder model (T5). Samples have an (input, target) length
    /// pair; the encoder consumes the input, the decoder the target.
    T5,
}

impl ModelArch {
    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelArch::Gpt => "GPT",
            ModelArch::T5 => "T5",
        }
    }

    /// Whether samples carry a separate decoder (target) sequence.
    pub fn is_encoder_decoder(self) -> bool {
        matches!(self, ModelArch::T5)
    }
}

/// A transformer model configuration (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture family.
    pub arch: ModelArch,
    /// Number of transformer layers. For [`ModelArch::T5`] this is the layer
    /// count in *each* of the encoder and decoder (Table 1 convention).
    pub num_layers: usize,
    /// Model (embedding) dimension, `d_model`.
    pub hidden_dim: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Dimension of each key/value head (`d_kv`). The inner attention
    /// dimension is `num_heads * kv_channels`, which for T5-11B (128 heads of
    /// 128 channels over a 1024 model dim) is much larger than `hidden_dim`.
    pub kv_channels: usize,
    /// Feed-forward (MLP) inner dimension, `d_ff`.
    pub ffn_dim: usize,
    /// Vocabulary size (tokens in the embedding table).
    pub vocab_size: usize,
}

impl ModelConfig {
    /// Inner attention projection dimension, `num_heads * kv_channels`.
    pub fn attn_dim(&self) -> usize {
        self.num_heads * self.kv_channels
    }

    /// Total number of transformer layers across the whole model: encoder
    /// plus decoder layers for T5, decoder layers for GPT.
    pub fn total_layers(&self) -> usize {
        match self.arch {
            ModelArch::Gpt => self.num_layers,
            ModelArch::T5 => 2 * self.num_layers,
        }
    }

    /// Parameters of one self-attention block (QKV + output projections).
    fn attn_params(&self) -> u64 {
        let h = self.hidden_dim as u64;
        let a = self.attn_dim() as u64;
        // Q, K, V: h -> attn_dim each; output: attn_dim -> h.
        4 * h * a
    }

    /// Parameters of one MLP block (two projections, no bias to first order).
    fn mlp_params(&self) -> u64 {
        2 * (self.hidden_dim as u64) * (self.ffn_dim as u64)
    }

    /// Parameters of a single encoder layer (self-attention + MLP + norms).
    pub fn encoder_layer_params(&self) -> u64 {
        self.attn_params() + self.mlp_params() + 2 * self.hidden_dim as u64
    }

    /// Parameters of a single decoder layer. T5 decoder layers carry an
    /// additional cross-attention block; GPT layers do not.
    pub fn decoder_layer_params(&self) -> u64 {
        let cross = match self.arch {
            ModelArch::Gpt => 0,
            ModelArch::T5 => self.attn_params() + self.hidden_dim as u64,
        };
        self.attn_params() + self.mlp_params() + cross + 2 * self.hidden_dim as u64
    }

    /// Embedding-table parameters (shared between input and output heads).
    pub fn embedding_params(&self) -> u64 {
        (self.vocab_size as u64) * (self.hidden_dim as u64)
    }

    /// Total parameter count of the model.
    pub fn total_params(&self) -> u64 {
        let body = match self.arch {
            ModelArch::Gpt => self.num_layers as u64 * self.decoder_layer_params(),
            ModelArch::T5 => {
                self.num_layers as u64 * (self.encoder_layer_params() + self.decoder_layer_params())
            }
        };
        body + self.embedding_params()
    }

    /// Total parameters in billions (for display; Table 1 reports billions).
    pub fn total_params_b(&self) -> f64 {
        self.total_params() as f64 / 1e9
    }

    // ----- Table 1 presets -------------------------------------------------

    /// GPT 3.35B (4-GPU configuration in Table 1).
    pub fn gpt_3_35b() -> Self {
        Self::gpt(16, 4096, 32, 128, 16384)
    }

    /// GPT 6.7B (8-GPU configuration in Table 1).
    pub fn gpt_6_7b() -> Self {
        Self::gpt(32, 4096, 32, 128, 16384)
    }

    /// GPT 13B (16-GPU configuration in Table 1).
    pub fn gpt_13b() -> Self {
        Self::gpt(40, 5140, 40, 128, 20560)
    }

    /// GPT 29B (32-GPU configuration in Table 1).
    pub fn gpt_29b() -> Self {
        Self::gpt(16, 12288, 96, 128, 49152)
    }

    /// T5 5.5B (4-GPU configuration in Table 1).
    pub fn t5_5_5b() -> Self {
        Self::t5(12)
    }

    /// T5 11B (8-GPU configuration in Table 1).
    pub fn t5_11b() -> Self {
        Self::t5(24)
    }

    /// T5 22B (16-GPU configuration in Table 1).
    pub fn t5_22b() -> Self {
        Self::t5(48)
    }

    /// T5 44B (32-GPU configuration in Table 1).
    pub fn t5_44b() -> Self {
        Self::t5(96)
    }

    /// The Table 1 GPT model matched to a cluster size (4, 8, 16 or 32 GPUs).
    pub fn gpt_for_gpus(num_gpus: usize) -> Option<Self> {
        match num_gpus {
            4 => Some(Self::gpt_3_35b()),
            8 => Some(Self::gpt_6_7b()),
            16 => Some(Self::gpt_13b()),
            32 => Some(Self::gpt_29b()),
            _ => None,
        }
    }

    /// The Table 1 T5 model matched to a cluster size (4, 8, 16 or 32 GPUs).
    pub fn t5_for_gpus(num_gpus: usize) -> Option<Self> {
        match num_gpus {
            4 => Some(Self::t5_5_5b()),
            8 => Some(Self::t5_11b()),
            16 => Some(Self::t5_22b()),
            32 => Some(Self::t5_44b()),
            _ => None,
        }
    }

    fn gpt(
        num_layers: usize,
        hidden_dim: usize,
        num_heads: usize,
        kv_channels: usize,
        ffn_dim: usize,
    ) -> Self {
        ModelConfig {
            arch: ModelArch::Gpt,
            num_layers,
            hidden_dim,
            num_heads,
            kv_channels,
            ffn_dim,
            vocab_size: 51200,
        }
    }

    fn t5(num_layers: usize) -> Self {
        // T5 family: model dim 1024, 128 heads x 128 kv channels, d_ff 65536
        // (Table 1); depth scales the model.
        ModelConfig {
            arch: ModelArch::T5,
            num_layers,
            hidden_dim: 1024,
            num_heads: 128,
            kv_channels: 128,
            ffn_dim: 65536,
            vocab_size: 32128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_param_counts_match_table1() {
        // Table 1 reports 3.35, 6.7, 13 and 29 (billions). The analytic count
        // ignores biases/positional embeddings so allow ~10% slack.
        let cases = [
            (ModelConfig::gpt_3_35b(), 3.35),
            (ModelConfig::gpt_6_7b(), 6.7),
            (ModelConfig::gpt_13b(), 13.0),
            (ModelConfig::gpt_29b(), 29.0),
        ];
        for (cfg, expect_b) in cases {
            let got = cfg.total_params_b();
            let rel = (got - expect_b).abs() / expect_b;
            assert!(
                rel < 0.12,
                "GPT params {got:.2}B vs Table 1 {expect_b}B (rel err {rel:.3})"
            );
        }
    }

    #[test]
    fn t5_param_counts_match_table1() {
        let cases = [
            (ModelConfig::t5_5_5b(), 5.5),
            (ModelConfig::t5_11b(), 11.0),
            (ModelConfig::t5_22b(), 22.0),
            (ModelConfig::t5_44b(), 44.0),
        ];
        for (cfg, expect_b) in cases {
            let got = cfg.total_params_b();
            let rel = (got - expect_b).abs() / expect_b;
            assert!(
                rel < 0.12,
                "T5 params {got:.2}B vs Table 1 {expect_b}B (rel err {rel:.3})"
            );
        }
    }

    #[test]
    fn t5_attention_dim_exceeds_hidden_dim() {
        // T5-11B's peculiarity: 128 heads x 128 channels = 16384 inner dim on
        // a 1024 model dim. The formulas must not assume attn_dim == hidden.
        let cfg = ModelConfig::t5_11b();
        assert_eq!(cfg.attn_dim(), 16384);
        assert!(cfg.attn_dim() > cfg.hidden_dim);
    }

    #[test]
    fn total_layers_doubles_for_t5() {
        assert_eq!(ModelConfig::gpt_6_7b().total_layers(), 32);
        assert_eq!(ModelConfig::t5_11b().total_layers(), 48);
    }

    #[test]
    fn decoder_layers_heavier_for_t5_only() {
        let t5 = ModelConfig::t5_11b();
        assert!(t5.decoder_layer_params() > t5.encoder_layer_params());
        let gpt = ModelConfig::gpt_6_7b();
        assert_eq!(gpt.decoder_layer_params(), gpt.encoder_layer_params());
    }

    #[test]
    fn presets_by_cluster_size() {
        assert_eq!(ModelConfig::gpt_for_gpus(8).unwrap().num_layers, 32);
        assert_eq!(ModelConfig::t5_for_gpus(32).unwrap().num_layers, 96);
        assert!(ModelConfig::gpt_for_gpus(6).is_none());
    }
}
