//! Per-host rollups of a cluster run — the data behind
//! `BENCH_cluster.json`.

use dynapipe_core::StoreStats;
use serde::Serialize;

/// What one planner host contributed.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PlannerHostStats {
    /// Host index in the planner pool.
    pub host: usize,
    /// Planner workers on this host.
    pub workers: usize,
    /// Iterations this host planned (claimed and completed).
    pub plans_produced: usize,
    /// Σ planning time on this host (µs, real).
    pub plan_us: f64,
    /// Σ lowering time on this host (µs, real).
    pub lower_us: f64,
    /// Σ encode + store-push time on this host (µs, real).
    pub serialize_us: f64,
    /// Wire bytes this host pushed into the store.
    pub bytes_pushed: u64,
    /// Simulated wire time of this host's pushes, including FIFO
    /// queueing on its uplink (µs).
    pub push_wire_us: f64,
}

/// What one executor host saw.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExecutorHostStats {
    /// Host index among the executors.
    pub host: usize,
    /// Data-parallel replicas assigned to this host (round-robin).
    pub replicas: Vec<usize>,
    /// Wire bytes this host fetched from the store (zero for the host
    /// colocated with the store).
    pub bytes_fetched: u64,
    /// Simulated wire time of this host's fetches, including FIFO
    /// queueing on its downlink (µs).
    pub fetch_wire_us: f64,
    /// Σ blob decode time on this host (µs, real; each host decodes its
    /// own copy).
    pub decode_us: f64,
    /// Σ plan-distribution latency this host had to wait out on the
    /// training timeline (µs): its plan was not yet decoded when the
    /// previous iteration's gradient sync finished.
    pub exposed_us: f64,
    /// Σ distribution-pipeline cost hidden behind execution on this
    /// host's timeline (µs).
    pub hidden_us: f64,
    /// hidden / (hidden + exposed-able cost), in [0, 1].
    pub overlap_ratio: f64,
    /// Σ simulated compute occupancy: this host's worst replica makespan
    /// per iteration (µs).
    pub busy_us: f64,
}

/// Churn and recovery counters of one elastic run. Recovery must be
/// visible (counted) and bounded (the `fig09_cluster` churn arm gates
/// on overhead) — but never behavioral: whatever these counters say,
/// the paired `RunReport` is bit-identical to the undisturbed run's.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChurnStats {
    /// Scripted events that took effect.
    pub events_applied: usize,
    /// Scripted events ignored as invalid (dead/unknown host, last
    /// survivor, store host).
    pub events_ignored: usize,
    /// Planner hosts crashed.
    pub planner_crashes: usize,
    /// Planner hosts joined.
    pub planner_joins: usize,
    /// Executor hosts lost.
    pub executor_losses: usize,
    /// Straggle delays injected.
    pub straggles: usize,
    /// Data-parallel replicas re-placed onto surviving executor hosts.
    pub replicas_moved: usize,
    /// Bounded executor waits that expired (each a re-issue attempt).
    pub deadline_expiries: u64,
    /// Queue tickets re-issued to a new claimant (deadline, crash,
    /// abandon).
    pub tickets_reissued: u64,
    /// Late duplicate completions discarded by the queue (first-wins).
    pub stale_completions: u64,
    /// Late duplicate blobs discarded at the store door
    /// (`push_discarding`).
    pub duplicate_blobs_discarded: u64,
}

/// The rollup of one cluster run. The paired
/// [`dynapipe_core::RunReport`] carries the training behavior (and must
/// be bit-identical to the serial driver's); this report carries where
/// the time and the bytes went.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ClusterReport {
    /// Topology label, e.g. `"2p×1w→2e"`.
    pub topology: String,
    /// Wire codec label (`"json"` / `"binary"` / `"flat"`).
    pub codec: String,
    /// Plan-ahead window used.
    pub plan_ahead: usize,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Per-planner-host breakdown.
    pub planner_hosts: Vec<PlannerHostStats>,
    /// Per-executor-host breakdown.
    pub executor_hosts: Vec<ExecutorHostStats>,
    /// End of the cluster training timeline (µs): simulated execution
    /// plus whatever distribution latency could not be hidden.
    pub cluster_wall_us: f64,
    /// The serial driver's timeline for the same work (µs): every
    /// microsecond of planning, encode and decode exposed, no wire.
    pub serial_wall_us: f64,
    /// Σ simulated iteration time (µs).
    pub exec_sim_us: f64,
    /// Σ host-side pipeline cost: planning + lowering + serialize +
    /// decode (µs, real).
    pub total_planning_us: f64,
    /// Σ simulated wire time across all hops (µs).
    pub total_wire_us: f64,
    /// Σ cluster-level exposed distribution latency (µs): how much later
    /// each iteration's gradient sync finished than it would have with
    /// all plans instantly available.
    pub exposed_us: f64,
    /// Fraction of (pipeline cost + wire) hidden behind execution.
    pub overlap_ratio: f64,
    /// Total wire bytes (pushes + fetches).
    pub wire_bytes: u64,
    /// Bytes of one mean plan blob on this codec.
    pub mean_blob_bytes: f64,
    /// Σ blob decode time, one decode per fetching host (µs, real).
    /// Under the flat codec this is validate-and-wrap plus the small
    /// plan-metadata decode — the instruction records are never decoded.
    pub decode_us: f64,
    /// Wire bytes the executors ran zero-copy, straight over the fetched
    /// blob (flat codec only; zero under the tree codecs).
    pub flat_wire_bytes: u64,
    /// Σ encode + push time (µs, real).
    pub serialize_us: f64,
    /// Real host wall-clock of the whole run (µs).
    pub host_wall_us: f64,
    /// Final instruction-store counters (post-teardown: occupancy and
    /// bytes must be zero, peak ≤ window).
    pub store: StoreStats,
    /// Churn events applied and what recovery cost (all zeros for an
    /// undisturbed run).
    pub churn: ChurnStats,
}

impl ClusterReport {
    /// Hidden distribution time (µs): everything the timeline absorbed.
    pub fn hidden_us(&self) -> f64 {
        (self.total_planning_us + self.total_wire_us - self.exposed_us).max(0.0)
    }
}
