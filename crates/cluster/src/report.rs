//! Per-host rollups of a cluster run — the data behind
//! `BENCH_cluster.json`.
//!
//! # The wire-byte rule
//!
//! A byte counts as a **wire byte** only when it crosses a non-local
//! fabric hop — i.e. the two endpoints are different hosts. A host
//! colocated with the shard that owns an iteration's blob reads it out
//! of host memory: that copy appears in *no* wire counter — not in
//! `ExecutorHostStats::bytes_fetched`, not in
//! [`ClusterReport::flat_wire_bytes`], not in
//! [`ClusterReport::wire_bytes`]. (An earlier revision counted the
//! store-colocated host's local copy in `flat_wire_bytes` but not in
//! `bytes_fetched`, so the two could never reconcile; the rule above is
//! now pinned by a reconciliation assert in
//! `tests/cluster_equivalence.rs`: on the flat codec,
//! `flat_wire_bytes == Σ bytes_fetched`, and it is zero on the tree
//! codecs.) Decode time is *not* a wire quantity: every host with a
//! replica decodes its own copy, local or not, so `decode_us` counts
//! all of them.

use dynapipe_core::StoreStats;
use serde::Serialize;

/// What one planner host contributed.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PlannerHostStats {
    /// Host index in the planner pool.
    pub host: usize,
    /// Planner workers on this host.
    pub workers: usize,
    /// Iterations this host planned (claimed and completed).
    pub plans_produced: usize,
    /// Σ planning time on this host (µs, real).
    pub plan_us: f64,
    /// Σ lowering time on this host (µs, real).
    pub lower_us: f64,
    /// Σ encode + store-push time on this host (µs, real).
    pub serialize_us: f64,
    /// Wire bytes this host pushed into the store.
    pub bytes_pushed: u64,
    /// Simulated wire time of this host's pushes, including FIFO
    /// queueing on its uplink (µs).
    pub push_wire_us: f64,
}

/// What one executor host saw.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExecutorHostStats {
    /// Host index among the executors.
    pub host: usize,
    /// Data-parallel replicas assigned to this host (round-robin).
    pub replicas: Vec<usize>,
    /// Wire bytes this host fetched from store shards on *other* hosts
    /// (local copies are free and uncounted — see the module docs' wire-
    /// byte rule; under the single placement host 0 therefore fetches
    /// zero).
    pub bytes_fetched: u64,
    /// Simulated wire time of this host's fetches, including FIFO
    /// queueing on its downlink (µs).
    pub fetch_wire_us: f64,
    /// Σ blob decode time on this host (µs, real; each host decodes its
    /// own copy).
    pub decode_us: f64,
    /// Σ plan-distribution latency this host had to wait out on the
    /// training timeline (µs): its plan was not yet decoded when the
    /// previous iteration's gradient sync finished.
    pub exposed_us: f64,
    /// Σ distribution-pipeline cost hidden behind execution on this
    /// host's timeline (µs).
    pub hidden_us: f64,
    /// hidden / (hidden + exposed-able cost), in [0, 1].
    pub overlap_ratio: f64,
    /// Σ simulated compute occupancy: this host's worst replica makespan
    /// per iteration (µs).
    pub busy_us: f64,
}

/// What one store shard carried. One entry per shard (a single entry
/// under [`crate::StorePlacement::Single`]); `fig09_cluster`'s datacenter arm
/// gates on the spread these counters reveal — no sharded link may
/// carry what the single store host's egress does.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ShardStats {
    /// Shard index (iteration `i` routes to shard `i % num_shards`).
    pub shard: usize,
    /// Executor host owning this shard at the last iteration routed to
    /// it (the initial owner if churn never moved it).
    pub owner: usize,
    /// Blobs pushed into this shard.
    pub blobs_stored: u64,
    /// Wire bytes planners pushed into this shard.
    pub bytes_pushed: u64,
    /// Wire bytes this shard served to *remote* fetching hosts (the
    /// owner's own replicas read local copies, uncounted — the wire-byte
    /// rule).
    pub bytes_served: u64,
    /// Simulated wire time of pushes into this shard, including FIFO
    /// queueing (µs).
    pub push_wire_us: f64,
    /// Simulated wire time of fetches out of this shard, including FIFO
    /// queueing and post-loss restore transfers (µs).
    pub fetch_wire_us: f64,
    /// Blobs restored from a surviving peer after this shard's owner was
    /// lost with the blob in flight.
    pub refetched_blobs: u64,
    /// Wire bytes those restores moved.
    pub refetch_bytes: u64,
}

/// Churn and recovery counters of one elastic run. Recovery must be
/// visible (counted) and bounded (the `fig09_cluster` churn arm gates
/// on overhead) — but never behavioral: whatever these counters say,
/// the paired `RunReport` is bit-identical to the undisturbed run's.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChurnStats {
    /// Scripted events that took effect.
    pub events_applied: usize,
    /// Scripted events ignored as invalid (dead/unknown host, last
    /// survivor, store host).
    pub events_ignored: usize,
    /// Planner hosts crashed.
    pub planner_crashes: usize,
    /// Planner hosts joined.
    pub planner_joins: usize,
    /// Executor hosts lost.
    pub executor_losses: usize,
    /// Straggle delays injected.
    pub straggles: usize,
    /// Data-parallel replicas re-placed onto surviving executor hosts.
    pub replicas_moved: usize,
    /// Bounded executor waits that expired (each a re-issue attempt).
    pub deadline_expiries: u64,
    /// Queue tickets re-issued to a new claimant (deadline, crash,
    /// abandon).
    pub tickets_reissued: u64,
    /// Late duplicate completions discarded by the queue (first-wins).
    pub stale_completions: u64,
    /// Late duplicate blobs discarded at the store door
    /// (`push_discarding`).
    pub duplicate_blobs_discarded: u64,
    /// Store shards re-owned onto survivors after an executor-host loss
    /// (sharded placement only; surviving assignments are stable).
    pub shards_moved: usize,
    /// In-flight blobs restored from a surviving peer because their
    /// shard's owner died between push and fetch (sharded placement
    /// only; the plan-ahead window bounds how many can be in flight).
    pub blobs_refetched: u64,
    /// Wire bytes those restores moved across the fabric.
    pub refetch_bytes: u64,
}

/// The rollup of one cluster run. The paired
/// [`dynapipe_core::RunReport`] carries the training behavior (and must
/// be bit-identical to the serial driver's); this report carries where
/// the time and the bytes went.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ClusterReport {
    /// Topology label, e.g. `"2p×1w→2e"`.
    pub topology: String,
    /// Wire codec label (`"json"` / `"binary"` / `"flat"`).
    pub codec: String,
    /// Store placement label (`"single"` / `"sharded"`).
    pub placement: String,
    /// Fabric label (`"uniform"` / `"free"` / `"racks(N)"`).
    pub fabric: String,
    /// Plan-ahead window used.
    pub plan_ahead: usize,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Per-planner-host breakdown.
    pub planner_hosts: Vec<PlannerHostStats>,
    /// Per-executor-host breakdown.
    pub executor_hosts: Vec<ExecutorHostStats>,
    /// Per-store-shard breakdown (one entry under the single placement).
    pub shards: Vec<ShardStats>,
    /// The busiest single directed host-pair link's total bytes — the
    /// number the datacenter sweep gates on: under the single placement
    /// the store host's links concentrate the whole plan stream, under
    /// the sharded placement no link should come close.
    pub max_link_bytes: u64,
    /// End of the cluster training timeline (µs): simulated execution
    /// plus whatever distribution latency could not be hidden.
    pub cluster_wall_us: f64,
    /// The serial driver's timeline for the same work (µs): every
    /// microsecond of planning, encode and decode exposed, no wire.
    pub serial_wall_us: f64,
    /// Σ simulated iteration time (µs).
    pub exec_sim_us: f64,
    /// Σ host-side pipeline cost: planning + lowering + serialize +
    /// decode (µs, real).
    pub total_planning_us: f64,
    /// Σ simulated wire time across all hops (µs).
    pub total_wire_us: f64,
    /// Σ cluster-level exposed distribution latency (µs): how much later
    /// each iteration's gradient sync finished than it would have with
    /// all plans instantly available.
    pub exposed_us: f64,
    /// Fraction of (pipeline cost + wire) hidden behind execution.
    pub overlap_ratio: f64,
    /// Total wire bytes (pushes + fetches).
    pub wire_bytes: u64,
    /// Bytes of one mean plan blob on this codec.
    pub mean_blob_bytes: f64,
    /// Σ blob decode time, one decode per fetching host (µs, real).
    /// Under the flat codec this is validate-and-wrap plus the small
    /// plan-metadata decode — the instruction records are never decoded.
    pub decode_us: f64,
    /// Wire bytes the executors ran zero-copy, straight over the fetched
    /// blob (flat codec only; zero under the tree codecs).
    pub flat_wire_bytes: u64,
    /// Σ encode + push time (µs, real).
    pub serialize_us: f64,
    /// Real host wall-clock of the whole run (µs).
    pub host_wall_us: f64,
    /// Final instruction-store counters (post-teardown: occupancy and
    /// bytes must be zero, peak ≤ window).
    pub store: StoreStats,
    /// Churn events applied and what recovery cost (all zeros for an
    /// undisturbed run).
    pub churn: ChurnStats,
}

impl ClusterReport {
    /// Hidden distribution time (µs): everything the timeline absorbed.
    pub fn hidden_us(&self) -> f64 {
        (self.total_planning_us + self.total_wire_us - self.exposed_us).max(0.0)
    }

    /// The counter ledger a trace of this run must reconcile against —
    /// see `dynapipe_trace::Trace::reconcile` for the exact checks
    /// (byte sums, span counts, bitwise exposed-µs ledgers).
    pub fn trace_meta(&self, label: &str) -> dynapipe_trace::TraceMeta {
        dynapipe_trace::TraceMeta {
            label: label.to_string(),
            topology: self.topology.clone(),
            codec: self.codec.clone(),
            placement: self.placement.clone(),
            iterations: self.iterations as u64,
            exec_sim_us: self.exec_sim_us,
            exposed_us: self.exposed_us,
            host_exposed_us: self.executor_hosts.iter().map(|h| h.exposed_us).collect(),
            wall_us: self.cluster_wall_us,
            bytes_pushed: self.planner_hosts.iter().map(|h| h.bytes_pushed).sum(),
            bytes_fetched: self.executor_hosts.iter().map(|h| h.bytes_fetched).sum(),
            flat_wire_bytes: self.flat_wire_bytes,
            refetch_bytes: self.churn.refetch_bytes,
            store_pushes: self.store.pushes,
            store_takes: self.store.takes,
            store_discarded: self.store.discarded,
            tickets_reissued: self.churn.tickets_reissued,
            churn_applied: self.churn.events_applied as u64,
        }
    }
}
