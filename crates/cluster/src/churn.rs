//! Deterministic fault injection for the cluster runtime.
//!
//! Production clusters churn: planner hosts crash, new hosts join,
//! executor hosts drop out, and otherwise-healthy machines straggle.
//! The elastic runtime's contract is that churn may cost wall-clock
//! time but can **never change behavior** — the [`RunReport`] of a
//! churned run is bit-identical to the undisturbed one
//! (`RunReport::behavior_eq`, pinned by `tests/churn_equivalence.rs`).
//!
//! To make that testable the fault model is a **script**, not a random
//! process: a [`ChurnScript`] is a list of [`ChurnEvent`]s keyed by
//! iteration index, applied by the executor-side prefetcher at the
//! moment it turns to that iteration (a single deterministic
//! application point — the prefetcher is the only thread that observes
//! iteration boundaries in order). Replaying the same script against
//! the same workload reproduces the same recovery sequence, so every
//! scenario in the test matrix is exact, not flaky.
//!
//! [`RunReport`]: dynapipe_core::RunReport

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One scripted fault, applied when the executor turns to the keyed
/// iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Planner host `host` dies: its workers stop claiming, and every
    /// ticket they hold is re-issued to the survivors under a fresh
    /// generation. Crashing the last live planner host is ignored
    /// (counted in [`ChurnStats::events_ignored`]) — a cluster with no
    /// planner is a different failure class (fail-stop poison), not
    /// churn.
    PlannerCrash {
        /// Planner host index (initial hosts first, joined hosts after).
        host: usize,
    },
    /// A new planner host with `workers` workers joins the pool and
    /// starts claiming tickets from the shared window — the window
    /// itself is demand-driven, so rebalancing is automatic.
    PlannerJoin {
        /// Planner workers on the joining host (clamped to ≥ 1).
        workers: usize,
    },
    /// Executor host `host` drops out: its data-parallel replicas are
    /// re-placed round-robin onto the surviving executor hosts, which
    /// re-fetch subsequent plans from the store over their own
    /// downlinks. Under the sharded store placement the dead host's
    /// shards re-own onto survivors too (surviving assignments stay
    /// put) and in-flight blobs are restored from a surviving peer.
    /// Losing the last surviving executor is always ignored, and under
    /// `StorePlacement::Single` so is losing host 0 (the store's
    /// colocation host) — those kill the store / the run, which is
    /// fail-stop territory, not churn.
    ExecutorLoss {
        /// Executor host index.
        host: usize,
    },
    /// Planner host `host` straggles: its next claim is delayed by a
    /// fixed `delay_ms` before planning starts (one-shot). With a
    /// re-issue deadline configured the executor detects the stall and
    /// re-issues the ticket to a healthy worker; first-completion-wins
    /// keeps the outcome identical either way.
    Straggle {
        /// Planner host index.
        host: usize,
        /// Fixed injected delay in milliseconds (deterministic, not
        /// sampled).
        delay_ms: u64,
    },
}

/// A deterministic churn scenario: events keyed by iteration index,
/// applied in push order within an iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnScript {
    events: Vec<(usize, ChurnEvent)>,
}

impl ChurnScript {
    /// The empty script (no churn) — the default for every config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: schedule `event` at `iteration`.
    pub fn at(mut self, iteration: usize, event: ChurnEvent) -> Self {
        self.events.push((iteration, event));
        self
    }

    /// Whether the script injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All scheduled events in push order.
    pub fn events(&self) -> &[(usize, ChurnEvent)] {
        &self.events
    }

    /// Events due exactly at `iteration`, in push order.
    pub fn events_at(&self, iteration: usize) -> impl Iterator<Item = &ChurnEvent> {
        self.events
            .iter()
            .filter(move |(it, _)| *it == iteration)
            .map(|(_, ev)| ev)
    }

    /// Worker counts of the hosts this script joins, in event order —
    /// the runtime pre-spawns their threads behind the membership gate
    /// so a join activates instantly and deterministically.
    pub fn joining_hosts(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|(_, ev)| match ev {
                ChurnEvent::PlannerJoin { workers } => Some((*workers).max(1)),
                _ => None,
            })
            .collect()
    }
}

/// One planner host's lifecycle under churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostState {
    /// Pre-spawned for a scripted join, not yet active: its workers
    /// block on the membership gate.
    Pending,
    /// Claiming and planning.
    Active,
    /// Crashed (or the run tore down before a pending host joined).
    Dead,
}

struct MembershipState {
    hosts: Vec<HostState>,
    /// One-shot straggle delay per host, armed by the script and taken
    /// by the host's next claiming worker.
    straggle: Vec<Option<Duration>>,
    shutdown: bool,
}

/// Live planner-host membership, shared between the scripted event
/// application (prefetcher side) and the worker threads.
///
/// Workers of a scripted-join host are spawned up front and parked in
/// [`Membership::wait_active`]; a crash flips the host to dead, which
/// its workers observe at their next claim boundary and respond to by
/// handing their ticket back ([`PlanAheadQueue::abandon`]) — the
/// in-flight tickets a dead host's workers can no longer hand back are
/// re-issued wholesale by the event application via
/// [`PlanAheadQueue::reissue_claimed_by`].
///
/// [`PlanAheadQueue::abandon`]: dynapipe_core::PlanAheadQueue::abandon
/// [`PlanAheadQueue::reissue_claimed_by`]: dynapipe_core::PlanAheadQueue::reissue_claimed_by
pub struct Membership {
    state: Mutex<MembershipState>,
    cv: Condvar,
}

impl Membership {
    /// `initial` hosts start active; `pending` more (scripted joins)
    /// start parked.
    pub fn new(initial: usize, pending: usize) -> Self {
        let mut hosts = vec![HostState::Active; initial];
        hosts.extend(std::iter::repeat(HostState::Pending).take(pending));
        Membership {
            state: Mutex::new(MembershipState {
                straggle: vec![None; hosts.len()],
                hosts,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MembershipState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until `host` becomes active. Returns `false` if the run
    /// shut down (or the host crashed) before that happened — the
    /// caller exits without ever touching the queue.
    pub fn wait_active(&self, host: usize) -> bool {
        let mut st = self.lock();
        loop {
            match st.hosts[host] {
                HostState::Active => return true,
                HostState::Dead => return false,
                HostState::Pending if st.shutdown => return false,
                HostState::Pending => {
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Activate the lowest-indexed pending host (scripted joins are
    /// pre-spawned in script order, so activation order matches the
    /// script). Returns the activated host, or `None` if no host is
    /// pending.
    pub fn activate_next(&self) -> Option<usize> {
        let mut st = self.lock();
        let h = st.hosts.iter().position(|s| *s == HostState::Pending)?;
        st.hosts[h] = HostState::Active;
        self.cv.notify_all();
        Some(h)
    }

    /// Kill `host`. Returns `false` (ignored) unless the host was
    /// active and at least one other active host survives it.
    pub fn crash(&self, host: usize) -> bool {
        let mut st = self.lock();
        if host >= st.hosts.len() || st.hosts[host] != HostState::Active {
            return false;
        }
        let survivors = st
            .hosts
            .iter()
            .enumerate()
            .filter(|&(h, s)| h != host && *s == HostState::Active)
            .count();
        if survivors == 0 {
            return false; // no planner left would be fail-stop, not churn
        }
        st.hosts[host] = HostState::Dead;
        self.cv.notify_all();
        true
    }

    /// Whether `host` is currently active.
    pub fn is_alive(&self, host: usize) -> bool {
        self.lock().hosts[host] == HostState::Active
    }

    /// Arm a one-shot straggle delay on `host`. Returns `false` if the
    /// host is not active.
    pub fn straggle(&self, host: usize, delay: Duration) -> bool {
        let mut st = self.lock();
        if host >= st.hosts.len() || st.hosts[host] != HostState::Active {
            return false;
        }
        st.straggle[host] = Some(delay);
        true
    }

    /// Take the pending straggle delay for `host`, if armed (one-shot:
    /// the first claiming worker pays it).
    pub fn take_straggle(&self, host: usize) -> Option<Duration> {
        self.lock().straggle[host].take()
    }

    /// Release every parked worker (end of run): pending hosts never
    /// activate, their workers exit cleanly.
    pub fn shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_builder_keys_events_by_iteration() {
        let s = ChurnScript::new()
            .at(1, ChurnEvent::PlannerCrash { host: 0 })
            .at(1, ChurnEvent::PlannerJoin { workers: 2 })
            .at(3, ChurnEvent::Straggle { host: 1, delay_ms: 5 });
        assert!(!s.is_empty());
        assert_eq!(s.events_at(0).count(), 0);
        assert_eq!(s.events_at(1).count(), 2);
        assert_eq!(s.events_at(3).count(), 1);
        assert_eq!(s.joining_hosts(), vec![2]);
        assert_eq!(ChurnScript::new().joining_hosts(), Vec::<usize>::new());
    }

    #[test]
    fn membership_lifecycle_and_guards() {
        let m = Membership::new(2, 1);
        assert!(m.is_alive(0) && m.is_alive(1) && !m.is_alive(2));
        // Joins activate pending hosts in order, then run dry.
        assert_eq!(m.activate_next(), Some(2));
        assert_eq!(m.activate_next(), None);
        assert!(m.is_alive(2));
        // Crashes require a surviving active host.
        assert!(m.crash(0));
        assert!(!m.crash(0), "already dead");
        assert!(m.crash(1));
        assert!(!m.crash(2), "last survivor must be protected");
        assert!(m.is_alive(2));
        // Straggles only arm on live hosts, and are one-shot.
        assert!(!m.straggle(0, Duration::from_millis(5)));
        assert!(m.straggle(2, Duration::from_millis(5)));
        assert_eq!(m.take_straggle(2), Some(Duration::from_millis(5)));
        assert_eq!(m.take_straggle(2), None);
    }

    #[test]
    fn wait_active_parks_until_join_and_releases_on_shutdown() {
        use std::sync::Arc;
        let m = Arc::new(Membership::new(1, 2));
        let joined = {
            let m = m.clone();
            std::thread::spawn(move || m.wait_active(1))
        };
        let stranded = {
            let m = m.clone();
            std::thread::spawn(move || m.wait_active(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(m.activate_next(), Some(1));
        assert!(joined.join().expect("joined waiter thread"), "activated host must wake true");
        m.shutdown();
        assert!(!stranded.join().expect("stranded waiter thread"), "shutdown must wake false");
    }
}
