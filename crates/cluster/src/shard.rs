//! Deterministic shard ownership of the instruction store across
//! executor hosts.
//!
//! The paper parks the store (Redis) on one training host; at O(100)
//! executor hosts that host's egress becomes the bottleneck — every
//! fetch of every iteration's blob crosses its links. The sharded
//! placement spreads ownership instead: shard `s` of `N = executor
//! hosts` starts on host `s`, iteration `i`'s blob lives on shard
//! `i % N`, so pushes and fetches fan out across the fabric and no
//! single host carries the whole plan stream. (This is host-level
//! *ownership* — distinct from the in-process `iteration % NUM_SHARDS`
//! lock-contention sharding inside `dynapipe_core::store`, which both
//! placements keep using.)
//!
//! Routing is **deterministic and snapshot-based**: the prefetcher — the
//! one thread that applies churn events in iteration order — resolves
//! each iteration's owning host *when it claims that iteration*, the
//! same discipline replica placement uses. Losing an executor host
//! re-owns **only** the lost host's shards (surviving assignments are
//! stable), round-robin onto the survivors; blobs already in flight to
//! the dead owner are restored from a surviving peer and counted as
//! churn recovery, never as behavior. Ownership is part of the
//! *scenario*: whatever the placement says, the blob still travels
//! through the same in-process [`dynapipe_core::store::InstructionStore`],
//! so `RunReport::behavior_eq` carries over by construction.

use serde::Serialize;

/// Where the instruction store lives in the simulated deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum StorePlacement {
    /// The paper's deployment: one store, colocated with executor
    /// host 0. Host 0 fetches for free; everyone else crosses its
    /// links. Host 0 is protected from scripted loss (losing the store
    /// is fail-stop, not churn).
    #[default]
    Single,
    /// One shard per executor host; iteration `i`'s blob is owned by
    /// `shard_of(i)`'s host. Any host may be lost (as long as one
    /// survives): its shards re-own onto survivors and in-flight blobs
    /// are restored from a surviving peer.
    Sharded,
}

impl StorePlacement {
    /// Label for reports: `"single"` / `"sharded"`.
    pub fn label(&self) -> &'static str {
        match self {
            StorePlacement::Single => "single",
            StorePlacement::Sharded => "sharded",
        }
    }
}

/// Which executor host owns each store shard.
///
/// `Single` degenerates to one shard owned by host 0; `Sharded` starts
/// with shard `s` on host `s`. [`ShardMap::reassign_lost`] is the only
/// mutation and touches only the lost host's shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    owners: Vec<usize>,
}

impl ShardMap {
    /// The initial ownership for a placement over `executor_hosts`
    /// hosts.
    pub fn new(placement: StorePlacement, executor_hosts: usize) -> Self {
        let owners = match placement {
            StorePlacement::Single => vec![0],
            StorePlacement::Sharded => (0..executor_hosts.max(1)).collect(),
        };
        ShardMap { owners }
    }

    /// Number of shards (1 for `Single`, the executor-host count for
    /// `Sharded`). Fixed for the life of a run.
    pub fn num_shards(&self) -> usize {
        self.owners.len()
    }

    /// Which shard iteration `i`'s blob lives on. Pure arithmetic —
    /// never affected by churn.
    pub fn shard_of(&self, iteration: usize) -> usize {
        iteration % self.owners.len()
    }

    /// Which host currently owns `shard`.
    pub fn owner(&self, shard: usize) -> usize {
        self.owners[shard]
    }

    /// Which host currently serves iteration `i`'s blob.
    pub fn host_of(&self, iteration: usize) -> usize {
        self.owner(self.shard_of(iteration))
    }

    /// Current ownership table, indexed by shard.
    pub fn owners(&self) -> &[usize] {
        &self.owners
    }

    /// Re-own the shards of a lost host round-robin onto `survivors`
    /// (which must be non-empty and exclude `lost`). Surviving hosts'
    /// shards are untouched — assignment stability is what keeps
    /// recovery bounded to the lost host's share. Returns how many
    /// shards moved.
    pub fn reassign_lost(&mut self, lost: usize, survivors: &[usize]) -> usize {
        debug_assert!(!survivors.is_empty(), "reassign_lost needs a survivor");
        debug_assert!(!survivors.contains(&lost), "lost host cannot survive");
        let mut moved = 0;
        for owner in self.owners.iter_mut() {
            if *owner == lost {
                *owner = survivors[moved % survivors.len()];
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_shape_the_map() {
        let single = ShardMap::new(StorePlacement::Single, 8);
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.host_of(0), 0);
        assert_eq!(single.host_of(12345), 0);
        assert_eq!(StorePlacement::Single.label(), "single");

        let sharded = ShardMap::new(StorePlacement::Sharded, 4);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.owners(), &[0, 1, 2, 3]);
        assert_eq!(sharded.shard_of(6), 2);
        assert_eq!(sharded.host_of(6), 2);
        assert_eq!(StorePlacement::Sharded.label(), "sharded");
    }

    #[test]
    fn reassign_moves_only_the_lost_hosts_shards() {
        // 6 shards over 3 hosts? No — one shard per host by
        // construction; exercise the round-robin by losing twice.
        let mut m = ShardMap::new(StorePlacement::Sharded, 4);
        assert_eq!(m.reassign_lost(1, &[0, 2, 3]), 1);
        assert_eq!(m.owners(), &[0, 0, 2, 3], "survivors untouched");
        assert_eq!(m.reassign_lost(0, &[2, 3]), 2);
        assert_eq!(m.owners(), &[2, 3, 2, 3], "round-robin over survivors");
        assert_eq!(m.reassign_lost(3, &[2]), 2);
        assert_eq!(m.owners(), &[2, 2, 2, 2]);
        // Routing arithmetic is untouched by ownership churn.
        assert_eq!(m.shard_of(7), 3);
        assert_eq!(m.host_of(7), 2);
    }
}
