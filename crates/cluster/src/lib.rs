//! `dynapipe-cluster`: the paper's Fig. 9 deployment on a **simulated
//! multi-host topology**.
//!
//! The PR 3/4 runtime already decouples the planner pool from the
//! executor through the instruction store, but everything runs on one
//! implicit host: pushing a 300 KB plan blob costs exactly as much as
//! sharing a pointer would, and there is no notion of *where* a planner
//! or a data-parallel replica lives. This crate deploys the same runtime
//! across an explicit topology:
//!
//! ```text
//!   planner host 0 ─┐                      ┌─► executor host 0 (replicas 0, M, …)
//!   planner host 1 ─┼─► instruction store ─┼─► executor host 1 (replicas 1, M+1, …)
//!        …          │   (on executor 0)    │        …
//!   planner host N ─┘                      └─► executor host M-1
//! ```
//!
//! * [`ClusterConfig`] places `planner_hosts × workers_per_host` planner
//!   workers and `executor_hosts` executor hosts (data-parallel replicas
//!   assigned round-robin), with a bounded plan-ahead window shared by
//!   the whole pool;
//! * the store itself is placed by [`StorePlacement`]: colocated with
//!   executor host 0 (the paper's deployment), or **sharded** one shard
//!   per executor host with iteration `i` owned by shard
//!   `i % executor_hosts` ([`crate::shard`]) — at O(100) hosts the
//!   single store host's egress concentrates the whole plan stream
//!   while sharding spreads it, which `fig09_cluster`'s datacenter arm
//!   measures and gates on;
//! * every [`dynapipe_core::StoredPlan`] blob crosses **modeled network
//!   links** priced by a [`dynapipe_sim::Fabric`] host-pair matrix
//!   (same host free, same rack intra-node, cross-rack oversubscribed
//!   inter-node) and replayed over α-β FIFO links
//!   ([`dynapipe_sim::link`]) — one uplink connection per planner
//!   *worker* × destination shard host (a worker's push stream is
//!   time-ordered, so the FIFO replay is exact) and one link per
//!   shard-host → executor-host pair — so blob *bytes* now have a
//!   *time* cost on the training timeline, and the wire codec
//!   ([`dynapipe_core::PlanCodec`]) becomes a measurable design choice;
//! * per-host and per-shard counters roll up into a [`ClusterReport`]:
//!   plans produced and bytes pushed per planner host, bytes fetched /
//!   wire time / exposed-vs-hidden planning per executor host, bytes
//!   stored and served per shard, the busiest single link's bytes, and
//!   store counters — all under the wire-byte rule documented in
//!   [`crate::report`] (a byte counts only when it crosses hosts).
//!
//! The deployment is **elastic** (PR 6): a [`ChurnScript`] injects
//! deterministic membership churn — planner-host crashes and joins,
//! executor-host losses with replica re-placement, and straggler
//! slowdowns recovered through deadline-based ticket re-issue
//! ([`crate::churn`]) — and [`ChurnStats`] counts what recovery cost.
//!
//! **The golden invariant carries over unchanged — and extends to
//! churn:** whatever the topology, codec, link speed, or scripted
//! churn, the produced [`dynapipe_core::RunReport`] is bit-identical to
//! the serial driver's (`RunReport::behavior_eq`) — the wire and the
//! churn can only move time around, never change what was trained.
//! `tests/cluster_equivalence.rs` and `tests/churn_equivalence.rs`
//! enforce this across the scenario matrices and the `fig09_cluster`
//! bench exits nonzero on any divergence.

pub mod churn;
pub mod report;
pub mod runtime;
pub mod shard;
pub mod topology;

pub use churn::{ChurnEvent, ChurnScript, Membership};
pub use report::{ChurnStats, ClusterReport, ExecutorHostStats, PlannerHostStats, ShardStats};
pub use runtime::{placed_host, run_training_cluster, run_training_cluster_traced};
pub use shard::{ShardMap, StorePlacement};
pub use topology::ClusterConfig;
