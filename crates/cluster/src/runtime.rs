//! The cluster runtime: the plan-ahead pipeline of
//! [`dynapipe_core::runtime`] deployed across an explicit multi-host
//! topology, with every plan blob paying its way over modeled links.
//!
//! # Architecture
//!
//! * **Planner hosts** — `planner_hosts × workers_per_host` worker
//!   threads claim iteration tickets from the shared bounded
//!   [`PlanAheadQueue`] (ticket order == stream order), plan, lower to
//!   *owned* programs, encode with the configured
//!   [`dynapipe_core::PlanCodec`] and push the blob into the
//!   [`InstructionStore`] — exactly the store-backed worker of the core
//!   runtime, annotated with which host produced the plan.
//! * **The store** lives where [`crate::StorePlacement`] says: on
//!   executor host 0 (the paper's Redis placement), or sharded one
//!   shard per executor host with iteration `i` owned by shard
//!   `i % executor_hosts` ([`crate::shard`]). A planner worker's push
//!   crosses its **uplink connection** to the owning shard's host (one
//!   connection per worker × destination, so the FIFO replay matches
//!   the worker's real push order); an executor host's fetch crosses
//!   the **shard-host → executor** link; a host colocated with the
//!   owning shard reads host memory for free. Every hop is priced by
//!   the [`dynapipe_sim::Fabric`] host-pair matrix (same host free,
//!   same rack intra-node, cross-rack oversubscribed inter-node) and
//!   replayed over α-β links with FIFO occupancy
//!   ([`dynapipe_sim::Link`]), so bursts of blobs queue instead of
//!   teleporting.
//! * **Executor hosts** — each data-parallel replica runs on host
//!   `r % executor_hosts`. The replica engines are the same
//!   [`execute_lowered`] fold as the serial driver (worst makespan,
//!   per-stage max peaks, stalls summed in replica order), so the
//!   [`RunReport`] is bit-identical by construction; the per-replica
//!   makespans are additionally grouped per host to build each host's
//!   timeline.
//!
//! # Timeline semantics
//!
//! Host-side costs (planning, lowering, encode, decode) are **real**
//! measured durations; wire costs are **simulated** from blob bytes and
//! the configured link — the same hybrid as the core runtime's overlap
//! accounting, extended with the wire hop. For iteration `i`:
//!
//! ```text
//! at_store    = uplink[w→s].transmit(pushed_at, bytes)      (w = planner worker,
//!                                                            s = owning shard's host)
//! at_shard    = restore[peer→s].transmit(at_store, bytes)   (only after the shard's
//!                                                            owner died mid-flight)
//! avail_h     = link[s→h].transmit(at_shard, bytes) + decode_us
//! exposed_h   = max(0, avail_h − sync_end(i−1))
//! start_h     = max(sync_end(i−1), avail_h)
//! sync_end(i) = max_h(start_h + span_h) + dp_sync
//! ```
//!
//! where `span_h` is host `h`'s worst replica makespan. With every plan
//! available in time, `sync_end(i) − sync_end(i−1)` degenerates to
//! exactly the serial iteration time, so the cluster wall can only
//! exceed the ideal by genuinely exposed distribution latency — which is
//! what [`ClusterReport`] itemizes per host.

use crate::churn::{ChurnEvent, Membership};
use crate::report::{ChurnStats, ClusterReport, ExecutorHostStats, PlannerHostStats, ShardStats};
use crate::shard::{ShardMap, StorePlacement};
use crate::topology::ClusterConfig;
use dynapipe_core::driver::{record_iteration, IterationPlanner, RunConfig, RunReport};
use dynapipe_core::planner::{IterationPlan, PlanError};
use dynapipe_core::runtime::{
    decode_for_execution, execute_lowered, plan_lower_push_traced, record_sim_iteration,
    CompleteOutcome, DuplicatePush, PlanAheadQueue, ReplicaParallelism, ReplicaPrograms,
    TicketGuard, TicketTraceCtx, WaitOutcome,
};
use dynapipe_core::store::InstructionStore;
use dynapipe_trace::{Span, SpanKind, TraceSink};
use dynapipe_batcher::PaddingStats;
use dynapipe_data::{BatchStream, Dataset, GlobalBatchConfig};
use dynapipe_sim::Link;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Crashed-counterpart bound for store waits (mirrors the core runtime):
/// reaching it means a dead peer, not backpressure.
const STORE_WAIT: Duration = Duration::from_secs(60);

/// What a planner worker reports through the queue once its blob is in
/// the store: the distribution accounting, annotated with the producing
/// worker — the payload itself travels only through the store.
struct ClusterPlanned {
    /// Global worker index (maps to a planner host and to that worker's
    /// uplink connection).
    worker: usize,
    plan_us: f64,
    lower_us: f64,
    serialize_us: f64,
    blob_bytes: usize,
    /// Real µs since run start when the push completed.
    pushed_at_us: f64,
}

/// What the prefetcher hands the executor per iteration.
struct ClaimedCluster {
    meta: ClusterPlanned,
    outcome: Result<(IterationPlan, Vec<ReplicaPrograms>), PlanError>,
    /// Real µs one host spends decoding its copy of the blob.
    decode_us: f64,
    /// Replica → executor-host placement in force for this iteration.
    /// Snapshotted by the prefetcher (the thread that applies churn
    /// events, possibly several iterations ahead of the executor), so
    /// the executor's accounting follows the placement the iteration
    /// was *fetched* under, deterministically.
    placement: Vec<usize>,
    /// Executor host owning this iteration's store shard, snapshotted by
    /// the prefetcher under the same discipline as `placement`.
    shard_host: usize,
    /// `Some(peer)` when the shard's previous owner died with this blob
    /// in flight: the surviving `peer` streams its replica to the new
    /// owner before any fetch can start.
    recover_from: Option<usize>,
}

/// Resolve data-parallel replica `r`'s executor host from a placement
/// snapshot.
///
/// The snapshot is built once per iteration by the prefetcher and must
/// cover every replica; a short snapshot is a **hard error**. (An
/// earlier revision silently fell back to the static
/// `r % executor_hosts` assignment, which can point at a host a churn
/// script already killed — the replica's time would be accounted to a
/// dead host's timeline without any test noticing.)
pub fn placed_host(placement: &[usize], replica: usize) -> Result<usize, String> {
    placement.get(replica).copied().ok_or_else(|| {
        format!(
            "placement snapshot covers {} replicas but replica {replica} needs a host; \
             falling back to the static assignment could route to a churn-killed host",
            placement.len()
        )
    })
}

enum Prefetched {
    Iteration(Box<ClaimedCluster>),
    EndOfEpoch,
    /// The store lost a blob the queue promised (crashed counterpart /
    /// corrupt wire blob).
    Lost(String),
}

/// Run (a prefix of) one training epoch on the simulated multi-host
/// cluster.
///
/// The returned [`RunReport`] is bit-identical to
/// [`dynapipe_core::run_training`] with the same arguments — any
/// topology, codec or link speed (`RunReport::behavior_eq`; pinned by
/// `tests/cluster_equivalence.rs`). The [`ClusterReport`] carries the
/// per-host and wire accounting.
pub fn run_training_cluster(
    planner: &dyn IterationPlanner,
    dataset: &Dataset,
    gbs: GlobalBatchConfig,
    run: RunConfig,
    cluster: ClusterConfig,
) -> (RunReport, ClusterReport) {
    run_training_cluster_traced(planner, dataset, gbs, run, cluster, &TraceSink::disabled())
}

/// [`run_training_cluster`] with span recording into `sink`: ticket
/// lifecycle, store traffic and churn actions as `Host`-domain spans,
/// per-blob link transfers (push / fetch / restore, with the FIFO
/// queue-wait split out), per-host exposure, and the executed
/// iterations as `Sim`-domain spans on the ideal simulated timeline.
/// With a disabled sink this *is* `run_training_cluster`.
pub fn run_training_cluster_traced(
    planner: &dyn IterationPlanner,
    dataset: &Dataset,
    gbs: GlobalBatchConfig,
    run: RunConfig,
    cluster: ClusterConfig,
    sink: &TraceSink,
) -> (RunReport, ClusterReport) {
    let cm = planner.cost_model();
    let cluster = cluster.normalized(cm.parallel.dp);
    let cap = run.max_iterations.unwrap_or(usize::MAX);
    let stream = BatchStream::new(dataset, gbs);
    let queue: PlanAheadQueue<ClusterPlanned> = PlanAheadQueue::new(cluster.plan_ahead, cap);
    // Window slots count store occupancy (ticket held from push to take),
    // so the capacity is a hard backstop, not an active gate.
    let store = InstructionStore::with_capacity(cluster.plan_ahead);
    // lint:allow(wall-clock): host wall-clock for ClusterReport.host_wall_us, excluded from behavior_eq
    let t0 = Instant::now();

    // Planner-host roster: the configured hosts plus one slot per
    // scripted join. Joined hosts' worker threads are spawned up front
    // but parked behind the membership gate, so a join event activates
    // them instantly (and deterministically — no mid-run thread spawn
    // racing the claim loop).
    let script = cluster.churn.clone();
    let mut host_workers: Vec<usize> = vec![cluster.workers_per_host; cluster.planner_hosts];
    host_workers.extend(script.joining_hosts());
    let worker_host: Vec<usize> = host_workers
        .iter()
        .enumerate()
        .flat_map(|(h, &n)| std::iter::repeat(h).take(n))
        .collect();
    let membership = Membership::new(cluster.planner_hosts, host_workers.len() - cluster.planner_hosts);
    let ledger: Mutex<ChurnStats> = Mutex::new(ChurnStats::default());

    let mut report = RunReport {
        planner: planner.label(),
        records: Vec::new(),
        total_tokens: 0,
        total_time_us: 0.0,
        padding: PaddingStats::default(),
        failure: None,
    };
    let initial_shards = ShardMap::new(cluster.placement, cluster.executor_hosts);
    let mut out = ClusterReport {
        topology: cluster.label(),
        codec: cluster.codec.label().to_string(),
        placement: cluster.placement.label().to_string(),
        fabric: cluster.fabric.label(),
        plan_ahead: cluster.plan_ahead,
        shards: initial_shards
            .owners()
            .iter()
            .enumerate()
            .map(|(s, &owner)| ShardStats {
                shard: s,
                owner,
                ..Default::default()
            })
            .collect(),
        planner_hosts: host_workers
            .iter()
            .enumerate()
            .map(|(h, &workers)| PlannerHostStats {
                host: h,
                workers,
                ..Default::default()
            })
            .collect(),
        executor_hosts: (0..cluster.executor_hosts)
            .map(|h| ExecutorHostStats {
                host: h,
                ..Default::default()
            })
            .collect(),
        ..Default::default()
    };

    // One uplink *connection* per planner worker × destination shard
    // host (a worker's pushes are ordered in time, so the FIFO math
    // replays exactly; a per-host shared link would be replayed in
    // iteration order, which races push order across workers and would
    // charge phantom queueing), and one link per shard-host → executor-
    // host pair out of the store; a host colocated with the owning
    // shard rides the fabric's free same-host link. Fetch-side links
    // are legitimately FIFO in iteration order: the executor demands
    // blobs in order, so fetch i+1 cannot start before fetch i finishes
    // on that pair's link. Connections are created lazily from the
    // fabric — a pair that never carries a blob never exists.
    let mut uplinks: BTreeMap<(usize, usize), Link> = BTreeMap::new();
    let mut interlinks: BTreeMap<(usize, usize), Link> = BTreeMap::new();

    let nested_threads = (rayon::current_num_threads() / cluster.total_workers().max(1)).max(1);

    std::thread::scope(|scope| {
        for (w, &host) in worker_host.iter().enumerate() {
            let queue = &queue;
            let stream = &stream;
            let store = &store;
            let membership = &membership;
            let ledger = &ledger;
            let cluster = &cluster;
            scope.spawn(move || {
                // Scripted-join hosts park here until their event fires.
                if !membership.wait_active(host) {
                    return;
                }
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(nested_threads)
                    .build()
                    .expect("planner worker pool");
                pool.install(|| {
                    while let Some(ticket) = queue.claim(stream, w) {
                        // A crash takes effect at the claim boundary:
                        // the dead host's worker hands the ticket
                        // straight back for the survivors. The abandon
                        // bumps the queue's `reissued` counter, so it
                        // records a re-issue span like the crash sweep
                        // (lane = the dead host).
                        if !membership.is_alive(host) {
                            queue.abandon(ticket.index, w);
                            if sink.is_enabled() {
                                let t = sink.now_us();
                                sink.record(Span {
                                    kind: SpanKind::TicketReissue,
                                    iteration: ticket.index as i64,
                                    lane: host as i64,
                                    start_us: t,
                                    end_us: t,
                                    ..Span::default()
                                });
                            }
                            return;
                        }
                        // A scripted straggle delays this host's next
                        // attempt *before* planning starts — the window
                        // the executor's re-issue deadline is built to
                        // detect.
                        if let Some(delay) = membership.take_straggle(host) {
                            std::thread::sleep(delay);
                        }
                        // The claim is recorded only once the holder
                        // commits to planning (a dead host's claim is
                        // abandoned above, not a lifecycle event).
                        if sink.is_enabled() {
                            let t = sink.now_us();
                            sink.record(Span {
                                kind: SpanKind::TicketClaim,
                                iteration: ticket.index as i64,
                                lane: w as i64,
                                host: cluster.planner_global(host) as i64,
                                start_us: t,
                                end_us: t,
                                generation: ticket.generation,
                                ..Span::default()
                            });
                        }
                        let guard = TicketGuard::new(queue, Some(store));
                        // Shared with the core runtime's store-backed
                        // worker: plan, lower owned, encode, push. Under
                        // churn an iteration may race two byte-identical
                        // blobs (straggler vs re-issue): whichever lands
                        // second is discarded at the store door.
                        let push = plan_lower_push_traced(
                            planner,
                            store,
                            cluster.codec,
                            ticket.index,
                            &ticket.batch,
                            DuplicatePush::Discard,
                            &TicketTraceCtx {
                                sink,
                                worker: w as i64,
                                host: cluster.planner_global(host) as i64,
                                shard: (ticket.index % cluster.num_shards()) as i64,
                                generation: ticket.generation,
                            },
                        );
                        if push.discarded {
                            ledger
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .duplicate_blobs_discarded += 1;
                        }
                        let outcome = queue.complete(
                            ticket.index,
                            ticket.generation,
                            ClusterPlanned {
                                worker: w,
                                plan_us: push.plan_us,
                                lower_us: push.lower_us,
                                serialize_us: push.serialize_us,
                                blob_bytes: push.blob_bytes,
                                pushed_at_us: t0.elapsed().as_secs_f64() * 1e6,
                            },
                        );
                        guard.disarm();
                        if sink.is_enabled() {
                            let t = sink.now_us();
                            sink.record(Span {
                                kind: SpanKind::TicketComplete,
                                iteration: ticket.index as i64,
                                lane: w as i64,
                                host: cluster.planner_global(host) as i64,
                                start_us: t,
                                end_us: t,
                                // 1 when the queue accepted this
                                // completion; 0 when it lost the churn
                                // race to a re-issued generation.
                                bytes: (outcome == CompleteOutcome::Accepted) as u64,
                                generation: ticket.generation,
                                ..Span::default()
                            });
                        }
                        if !membership.is_alive(host) {
                            return; // crashed mid-plan: stop claiming
                        }
                    }
                });
            });
        }

        // Executor-side prefetcher: take each blob in order, decode it
        // ahead of execution (one decode stands in for the per-host
        // decodes, which would run in parallel on identical bytes), and
        // hand the executable plan over a bounded channel.
        //
        // The prefetcher is also the **churn event loop**: it is the one
        // thread that observes iteration boundaries strictly in order,
        // so scripted events key off its progress — applied before the
        // wait for the keyed iteration's plan, and the placement in
        // force is snapshotted per iteration for the executor's
        // accounting (the prefetcher runs ahead, so the executor must
        // not read live placement state).
        let (tx, rx) = std::sync::mpsc::sync_channel::<Prefetched>(1);
        {
            let queue = &queue;
            let store = &store;
            let membership = &membership;
            let ledger = &ledger;
            let script = &script;
            let worker_host = &worker_host;
            let cluster = &cluster;
            let dp = cm.parallel.dp.max(1);
            scope.spawn(move || {
                // Instant Host-domain markers: churn actions carry the
                // event class in `generation` (0 crash / 1 join /
                // 2 straggle / 3 executor loss) and the affected host in
                // `lane`; re-issues count against `tickets_reissued`.
                let churn_span = |class: u64, affected: i64, it: usize| {
                    if sink.is_enabled() {
                        let t = sink.now_us();
                        sink.record(Span {
                            kind: SpanKind::ChurnAction,
                            iteration: it as i64,
                            lane: affected,
                            start_us: t,
                            end_us: t,
                            generation: class,
                            ..Span::default()
                        });
                    }
                };
                let reissue_span = |iteration: i64, lane: i64| {
                    if sink.is_enabled() {
                        let t = sink.now_us();
                        sink.record(Span {
                            kind: SpanKind::TicketReissue,
                            iteration,
                            lane,
                            start_us: t,
                            end_us: t,
                            ..Span::default()
                        });
                    }
                };
                let mut executor_alive = vec![true; cluster.executor_hosts];
                let mut replica_host: Vec<usize> =
                    (0..dp).map(|r| cluster.executor_host_of(r)).collect();
                let mut shard_map = ShardMap::new(cluster.placement, cluster.executor_hosts);
                // Iteration → surviving peer that must restore the blob
                // to its shard's new owner (owner died mid-flight).
                let mut pending_recovery: BTreeMap<usize, usize> = BTreeMap::new();
                for it in 0..cap {
                    // --- Scripted churn due at this iteration ---------
                    for ev in script.events_at(it) {
                        let mut led = ledger.lock().unwrap_or_else(|e| e.into_inner());
                        match ev {
                            ChurnEvent::PlannerCrash { host } => {
                                if membership.crash(*host) {
                                    led.events_applied += 1;
                                    led.planner_crashes += 1;
                                    churn_span(0, *host as i64, it);
                                    // Everything the dead host's workers
                                    // held goes back to the survivors.
                                    let n =
                                        queue.reissue_claimed_by(|w| worker_host[w] == *host);
                                    for _ in 0..n {
                                        // Claimed-but-unplanned tickets
                                        // are unknown here: -1 iteration,
                                        // lane = the dead host.
                                        reissue_span(-1, *host as i64);
                                    }
                                } else {
                                    led.events_ignored += 1;
                                }
                            }
                            ChurnEvent::PlannerJoin { .. } => {
                                if let Some(joined) = membership.activate_next() {
                                    led.events_applied += 1;
                                    led.planner_joins += 1;
                                    churn_span(1, joined as i64, it);
                                } else {
                                    led.events_ignored += 1;
                                }
                            }
                            ChurnEvent::Straggle { host, delay_ms } => {
                                if membership
                                    .straggle(*host, Duration::from_millis(*delay_ms))
                                {
                                    led.events_applied += 1;
                                    led.straggles += 1;
                                    churn_span(2, *host as i64, it);
                                } else {
                                    led.events_ignored += 1;
                                }
                            }
                            ChurnEvent::ExecutorLoss { host } => {
                                let survivors: Vec<usize> = (0..cluster.executor_hosts)
                                    .filter(|&h| h != *host && executor_alive[h])
                                    .collect();
                                // Under the single placement host 0
                                // holds the whole store; losing it (or
                                // the last survivor under either
                                // placement) is fail-stop, not churn. A
                                // dead/unknown host is a no-op. Under
                                // the sharded placement *any* host may
                                // go — its shards re-own onto survivors.
                                let store_protected = cluster.placement
                                    == StorePlacement::Single
                                    && *host == 0;
                                if store_protected
                                    || *host >= cluster.executor_hosts
                                    || !executor_alive[*host]
                                    || survivors.is_empty()
                                {
                                    led.events_ignored += 1;
                                } else {
                                    executor_alive[*host] = false;
                                    led.events_applied += 1;
                                    led.executor_losses += 1;
                                    churn_span(3, *host as i64, it);
                                    // Re-place the lost host's replicas
                                    // round-robin onto the survivors;
                                    // their plans re-distribute from the
                                    // store over the survivors' own
                                    // downlinks from here on.
                                    for (r, h) in replica_host.iter_mut().enumerate() {
                                        if *h == *host {
                                            *h = survivors[r % survivors.len()];
                                            led.replicas_moved += 1;
                                        }
                                    }
                                    // Sharded store recovery: only the
                                    // dead host's shards move (surviving
                                    // assignments are stable), and any
                                    // blob that may already sit on the
                                    // dead owner — conservatively, the
                                    // whole plan-ahead window from here —
                                    // is restored from a surviving peer
                                    // before its fetches replay.
                                    let lost_shards: Vec<usize> = shard_map
                                        .owners()
                                        .iter()
                                        .enumerate()
                                        .filter(|(_, &o)| o == *host)
                                        .map(|(s, _)| s)
                                        .collect();
                                    if !lost_shards.is_empty() {
                                        led.shards_moved +=
                                            shard_map.reassign_lost(*host, &survivors);
                                        let window_end =
                                            it.saturating_add(cluster.plan_ahead).min(cap);
                                        for j in it..window_end {
                                            let s = shard_map.shard_of(j);
                                            if !lost_shards.contains(&s) {
                                                continue;
                                            }
                                            let new_owner = shard_map.owner(s);
                                            // The lowest surviving host
                                            // that is not the new owner
                                            // holds the replica; a sole
                                            // survivor already owns it.
                                            if let Some(&peer) = survivors
                                                .iter()
                                                .find(|&&h| h != new_owner)
                                            {
                                                pending_recovery.insert(j, peer);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let placement = replica_host.clone();
                    let shard_host = shard_map.host_of(it);
                    let recover_from = pending_recovery.remove(&it);

                    // --- Bounded wait + straggler re-issue ------------
                    let meta = loop {
                        match queue.wait_for_deadline(it, cluster.reissue_deadline) {
                            WaitOutcome::Cancelled => return,
                            WaitOutcome::EndOfEpoch => {
                                let _ = tx.send(Prefetched::EndOfEpoch);
                                return;
                            }
                            WaitOutcome::Deadline => {
                                // The plan is overdue: suspect the
                                // holder and re-issue the ticket to the
                                // next healthy claimant, then keep
                                // waiting (first completion wins).
                                let mut led =
                                    ledger.lock().unwrap_or_else(|e| e.into_inner());
                                led.deadline_expiries += 1;
                                drop(led);
                                let min_age = cluster
                                    .reissue_deadline
                                    .expect("Deadline implies a deadline was set");
                                if queue.reissue(it, min_age) {
                                    reissue_span(it as i64, -1);
                                }
                            }
                            WaitOutcome::Planned(p) => break p,
                        }
                    };
                    // Time the *decode* alone: the wait-for-arrival and
                    // the store take model the fetch, which the timeline
                    // already charges as downlink wire time.
                    let s_take = sink.now_us();
                    let taken = store.take_blocking(it, STORE_WAIT);
                    queue.advance(it); // blob out of the store: slot free
                    let taken_at = sink.now_us();
                    if sink.is_enabled() {
                        if let Ok(blob) = &taken {
                            sink.record(Span {
                                kind: SpanKind::StoreTake,
                                iteration: it as i64,
                                lane: shard_map.shard_of(it) as i64,
                                host: cluster.executor_global(shard_host) as i64,
                                start_us: s_take,
                                end_us: taken_at,
                                bytes: blob.len() as u64,
                                ..Span::default()
                            });
                        }
                    }
                    // lint:allow(wall-clock): decode timing for ExecutorHostStats.decode_us, a stats field only
                    let t_decode = Instant::now();
                    let decoded = taken.map_err(|e| format!("take: {e}")).and_then(|blob| {
                        decode_for_execution(cluster.codec, blob)
                            .map_err(|e| format!("decode: {e}"))
                    });
                    let decode_us = t_decode.elapsed().as_secs_f64() * 1e6;
                    if sink.is_enabled() && decoded.is_ok() {
                        sink.record(Span {
                            kind: SpanKind::Decode,
                            iteration: it as i64,
                            lane: shard_map.shard_of(it) as i64,
                            host: cluster.executor_global(shard_host) as i64,
                            start_us: taken_at,
                            end_us: sink.now_us(),
                            ..Span::default()
                        });
                    }
                    let (iteration, outcome) = match decoded {
                        Ok(s) => s,
                        Err(e) => {
                            let _ = tx.send(Prefetched::Lost(format!(
                                "instruction store lost iteration {it}: {e}"
                            )));
                            return;
                        }
                    };
                    debug_assert_eq!(iteration, it, "blob is self-describing");
                    let claimed = ClaimedCluster {
                        meta,
                        outcome,
                        decode_us,
                        placement,
                        shard_host,
                        recover_from,
                    };
                    if tx.send(Prefetched::Iteration(Box::new(claimed))).is_err() {
                        return; // executor stopped consuming
                    }
                }
                let _ = tx.send(Prefetched::EndOfEpoch);
            });
        }

        // The executor: strictly in order on the caller thread, folding
        // the per-host timelines as it goes.
        let mut vclock = 0.0f64;
        // Sim-domain clock: the ideal back-to-back timeline the executed
        // iterations would occupy with every plan instantly available.
        let mut sim_clock = 0.0f64;
        let mut refetched_blobs = 0u64;
        let mut refetched_bytes = 0u64;
        for it in 0..cap {
            let claimed = match rx.recv() {
                Ok(Prefetched::EndOfEpoch) => break,
                Ok(Prefetched::Lost(e)) => {
                    queue.cancel();
                    panic!("{e}");
                }
                Err(_) => {
                    // Prefetcher died without a message: a planner worker
                    // panicked under it; unblock the pool and re-raise.
                    queue.cancel();
                    panic!("a planner worker panicked while planning ahead");
                }
                Ok(Prefetched::Iteration(c)) => c,
            };
            let ClaimedCluster {
                meta,
                outcome,
                decode_us,
                placement,
                shard_host,
                recover_from,
            } = *claimed;
            let (plan, programs) = match outcome {
                Ok(x) => x,
                Err(e) => {
                    report.failure = Some(format!("iteration {it}: {e}"));
                    break;
                }
            };
            let exec = match execute_lowered(
                cm,
                &plan,
                &programs,
                &run,
                it,
                ReplicaParallelism::Parallel,
            ) {
                Ok(x) => x,
                Err(e) => {
                    report.failure = Some(format!("iteration {it}: {e}"));
                    break;
                }
            };

            // --- Wire + per-host timeline ---------------------------------
            let bytes = meta.blob_bytes as u64;
            let p = worker_host[meta.worker];
            let shard = it % out.shards.len();
            let up = uplinks
                .entry((meta.worker, shard_host))
                .or_insert_with(|| {
                    cluster
                        .fabric
                        .connect(cluster.planner_global(p), cluster.executor_global(shard_host))
                });
            let up_before = up.wire_us();
            let up_busy = up.busy_until_us();
            let at_store = up.transmit(meta.pushed_at_us, bytes);
            let push_wire = up.wire_us() - up_before;
            if sink.is_enabled() {
                sink.record(Span {
                    kind: SpanKind::LinkPush,
                    iteration: it as i64,
                    lane: meta.worker as i64,
                    host: cluster.planner_global(p) as i64,
                    start_us: meta.pushed_at_us,
                    end_us: at_store,
                    // FIFO queueing behind the worker's earlier pushes,
                    // split out of the interval.
                    wait_us: (up_busy - meta.pushed_at_us).max(0.0),
                    bytes,
                    src: cluster.planner_global(p) as i64,
                    dst: cluster.executor_global(shard_host) as i64,
                    ..Span::default()
                });
            }
            let ph = &mut out.planner_hosts[p];
            ph.plans_produced += 1;
            ph.plan_us += meta.plan_us;
            ph.lower_us += meta.lower_us;
            ph.serialize_us += meta.serialize_us;
            ph.bytes_pushed += bytes;
            ph.push_wire_us += push_wire;
            {
                let sh = &mut out.shards[shard];
                sh.owner = shard_host;
                sh.blobs_stored += 1;
                sh.bytes_pushed += bytes;
                sh.push_wire_us += push_wire;
            }

            // Post-loss restore: the shard's previous owner died with
            // this blob in flight, so a surviving peer streams its
            // replica to the new owner before any fetch can start.
            let at_shard = if let Some(peer) = recover_from {
                let link = interlinks
                    .entry((peer, shard_host))
                    .or_insert_with(|| cluster.fabric.connect(peer, shard_host));
                let before = link.wire_us();
                let restore_busy = link.busy_until_us();
                let restored = link.transmit(at_store, bytes);
                if sink.is_enabled() {
                    sink.record(Span {
                        kind: SpanKind::LinkRestore,
                        iteration: it as i64,
                        lane: shard as i64,
                        host: cluster.executor_global(shard_host) as i64,
                        start_us: at_store,
                        end_us: restored,
                        wait_us: (restore_busy - at_store).max(0.0),
                        bytes,
                        src: cluster.executor_global(peer) as i64,
                        dst: cluster.executor_global(shard_host) as i64,
                        ..Span::default()
                    });
                }
                let sh = &mut out.shards[shard];
                sh.refetched_blobs += 1;
                sh.refetch_bytes += bytes;
                sh.fetch_wire_us += link.wire_us() - before;
                refetched_blobs += 1;
                refetched_bytes += bytes;
                restored
            } else {
                at_store
            };

            // Hosts with at least one replica this iteration fetch the
            // blob and run their share.
            let mut spans = vec![f64::NEG_INFINITY; cluster.executor_hosts];
            for (r, &makespan) in exec.replica_makespans.iter().enumerate() {
                // Placement under churn: the snapshot the prefetcher took
                // when it fetched this iteration (initially
                // `r % executor_hosts`; re-placed on executor loss). A
                // snapshot that fails to cover a replica is a hard error
                // — the silent static fallback it replaces could route
                // to a churn-killed host.
                let h = placed_host(&placement, r).expect("short placement snapshot");
                spans[h] = spans[h].max(makespan);
                if !out.executor_hosts[h].replicas.contains(&r) {
                    out.executor_hosts[h].replicas.push(r);
                }
            }
            let mut sync_end = f64::NEG_INFINITY;
            let mut remote_copies = 0u64;
            for (h, &span) in spans.iter().enumerate() {
                if span == f64::NEG_INFINITY {
                    continue; // no replica landed here this iteration
                }
                let link = interlinks
                    .entry((shard_host, h))
                    .or_insert_with(|| cluster.fabric.connect(shard_host, h));
                let down_before = link.wire_us();
                let down_busy = link.busy_until_us();
                let arrival = link.transmit(at_shard, bytes);
                let fetch_wire = link.wire_us() - down_before;
                let avail = arrival + decode_us;
                let eh = &mut out.executor_hosts[h];
                // The wire-byte rule (see report.rs): only copies that
                // cross hosts count — the shard owner's replicas read
                // host memory. The trace obeys the same rule: a
                // LinkFetch span exists iff the copy crossed hosts, so
                // Σ span bytes reconciles against `bytes_fetched`.
                if h != shard_host {
                    eh.bytes_fetched += bytes;
                    out.shards[shard].bytes_served += bytes;
                    remote_copies += 1;
                    if sink.is_enabled() {
                        sink.record(Span {
                            kind: SpanKind::LinkFetch,
                            iteration: it as i64,
                            lane: h as i64,
                            host: cluster.executor_global(h) as i64,
                            start_us: at_shard,
                            end_us: arrival,
                            wait_us: (down_busy - at_shard).max(0.0),
                            bytes,
                            src: cluster.executor_global(shard_host) as i64,
                            dst: cluster.executor_global(h) as i64,
                            ..Span::default()
                        });
                    }
                }
                eh.fetch_wire_us += fetch_wire;
                out.shards[shard].fetch_wire_us += fetch_wire;
                eh.decode_us += decode_us;
                // The span carries the exact ledger term in `wait_us`
                // (start/end have float residue; the counter does not),
                // and zero terms are skipped — adding +0.0 to a
                // non-negative accumulator cannot change its bits, so
                // the per-host ledger still reconciles bit-exactly.
                let wait = (avail - vclock).max(0.0);
                eh.exposed_us += wait;
                if sink.is_enabled() && wait > 0.0 {
                    sink.record(Span {
                        kind: SpanKind::ExposedWait,
                        iteration: it as i64,
                        lane: h as i64,
                        host: cluster.executor_global(h) as i64,
                        start_us: vclock,
                        end_us: avail,
                        wait_us: wait,
                        ..Span::default()
                    });
                }
                eh.busy_us += span;
                let start = vclock.max(avail);
                sync_end = sync_end.max(start + span);
            }
            let end = sync_end + plan.dp_sync_time;
            // How much later the sync finished than it would have with
            // every plan instantly available.
            let exposed = (end - vclock - exec.measured_time).max(0.0);
            out.exposed_us += exposed;
            if sink.is_enabled() && exposed > 0.0 {
                sink.record(Span {
                    kind: SpanKind::ExposedPlanning,
                    iteration: it as i64,
                    start_us: vclock,
                    end_us: vclock + exposed,
                    wait_us: exposed,
                    ..Span::default()
                });
            }
            record_sim_iteration(sink, it, &exec, &mut sim_clock);
            vclock = end;

            out.exec_sim_us += exec.measured_time;
            out.serialize_us += meta.serialize_us;
            out.decode_us += decode_us * spans.iter().filter(|s| s.is_finite()).count() as f64;
            out.total_planning_us += meta.plan_us + meta.lower_us;
            if cluster.codec == dynapipe_core::PlanCodec::Flat {
                // Every host that fetched a *remote* copy ran engines
                // straight over the wire bytes; the shard owner's local
                // copy is host memory, not wire (the wire-byte rule —
                // an earlier revision counted it here but not in
                // bytes_fetched, so the two could never reconcile).
                out.flat_wire_bytes += bytes * remote_copies;
            }
            out.iterations += 1;

            record_iteration(
                &mut report,
                cm,
                &plan,
                exec.measured_time,
                exec.peak_memory,
                exec.allocator_stall_us,
            );
        }
        out.cluster_wall_us = vclock;
        {
            let mut led = ledger.lock().unwrap_or_else(|e| e.into_inner());
            led.blobs_refetched = refetched_blobs;
            led.refetch_bytes = refetched_bytes;
        }
        // Teardown: stop workers waiting on the window or about to claim
        // past a failure, wake a prefetcher stuck on a plan that will
        // never come, and release the workers of scripted-join hosts
        // whose event never fired.
        queue.cancel();
        membership.shutdown();
        drop(rx);
    });

    // Workers joined: sweep speculative blobs past a failure. Each
    // swept blob is a discard, so the trace's StoreDiscard count keeps
    // matching the store's `discarded` counter.
    let swept = store.clear_remaining();
    if sink.is_enabled() {
        let t = sink.now_us();
        for _ in 0..swept {
            sink.record(Span {
                kind: SpanKind::StoreDiscard,
                start_us: t,
                end_us: t,
                ..Span::default()
            });
        }
    }
    out.store = store.stats();

    // Fold the queue's churn counters into the ledger.
    let mut churn = ledger.into_inner().unwrap_or_else(|e| e.into_inner());
    let qc = queue.churn_stats();
    churn.tickets_reissued = qc.reissued;
    churn.stale_completions = qc.stale_completions;
    out.churn = churn;

    // Cluster totals. Host pipeline cost counts every host's decode (each
    // fetching host burns its own CPU on its copy).
    out.total_planning_us += out.serialize_us + out.decode_us;
    out.total_wire_us = uplinks.values().map(Link::wire_us).sum::<f64>()
        + interlinks.values().map(Link::wire_us).sum::<f64>();
    // The busiest single directed host-pair link — local links never
    // count bytes, so this is a pure wire quantity.
    out.max_link_bytes = uplinks
        .values()
        .chain(interlinks.values())
        .map(Link::bytes)
        .max()
        .unwrap_or(0);
    let pushed: u64 = out.planner_hosts.iter().map(|h| h.bytes_pushed).sum();
    out.wire_bytes = pushed
        + out
            .executor_hosts
            .iter()
            .map(|h| h.bytes_fetched)
            .sum::<u64>();
    out.mean_blob_bytes = if out.iterations > 0 {
        pushed as f64 / out.iterations as f64
    } else {
        0.0
    };
    out.serial_wall_us = out.total_planning_us + out.exec_sim_us;
    let to_hide = out.total_planning_us + out.total_wire_us;
    out.overlap_ratio = if to_hide > 0.0 {
        (to_hide - out.exposed_us).max(0.0) / to_hide
    } else {
        1.0
    };
    for eh in &mut out.executor_hosts {
        // Per-host overlap: the host's share of the upstream pipeline
        // (planning + lowering + serialize, split evenly across hosts —
        // they all consume the same plans) plus its own fetch wire and
        // decode, minus what it actually had to wait out on its timeline.
        let upstream = (out.total_planning_us - out.decode_us) / cluster.executor_hosts as f64;
        let total = upstream + eh.fetch_wire_us + eh.decode_us;
        eh.hidden_us = (total - eh.exposed_us).max(0.0);
        eh.overlap_ratio = if total > 0.0 {
            eh.hidden_us / total
        } else {
            1.0
        };
    }
    out.host_wall_us = t0.elapsed().as_secs_f64() * 1e6;
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_placement_snapshot_is_a_hard_error() {
        // The regression: with host 1 killed by churn, a snapshot
        // re-placing replica 0 onto host 0 but (wrongly) missing
        // replica 1 used to fall back to the static `r % hosts`
        // assignment — routing replica 1 straight back to dead host 1.
        assert_eq!(placed_host(&[0, 0], 1), Ok(0));
        let err = placed_host(&[0], 1).expect_err("short snapshot must be rejected");
        assert!(err.contains("replica 1"), "{err}");
        assert!(placed_host(&[], 0).is_err());
    }
}
