//! The cluster runtime: the plan-ahead pipeline of
//! [`dynapipe_core::runtime`] deployed across an explicit multi-host
//! topology, with every plan blob paying its way over modeled links.
//!
//! # Architecture
//!
//! * **Planner hosts** — `planner_hosts × workers_per_host` worker
//!   threads claim iteration tickets from the shared bounded
//!   [`PlanAheadQueue`] (ticket order == stream order), plan, lower to
//!   *owned* programs, encode with the configured
//!   [`dynapipe_core::PlanCodec`] and push the blob into the
//!   [`InstructionStore`] — exactly the store-backed worker of the core
//!   runtime, annotated with which host produced the plan.
//! * **The store** lives on executor host 0 (the paper's Redis
//!   placement). A planner worker's push crosses its **uplink
//!   connection** (one per worker, so the FIFO replay matches the
//!   worker's real push order); an executor host's fetch crosses its
//!   **downlink**; host 0 fetches through local host memory. Links are
//!   α-β with FIFO occupancy ([`dynapipe_sim::Link`]), so bursts of
//!   blobs queue instead of teleporting.
//! * **Executor hosts** — each data-parallel replica runs on host
//!   `r % executor_hosts`. The replica engines are the same
//!   [`execute_lowered`] fold as the serial driver (worst makespan,
//!   per-stage max peaks, stalls summed in replica order), so the
//!   [`RunReport`] is bit-identical by construction; the per-replica
//!   makespans are additionally grouped per host to build each host's
//!   timeline.
//!
//! # Timeline semantics
//!
//! Host-side costs (planning, lowering, encode, decode) are **real**
//! measured durations; wire costs are **simulated** from blob bytes and
//! the configured link — the same hybrid as the core runtime's overlap
//! accounting, extended with the wire hop. For iteration `i`:
//!
//! ```text
//! at_store    = uplink[w].transmit(pushed_at, bytes)        (w = planner worker)
//! avail_h     = downlink[h].transmit(at_store, bytes) + decode_us
//! exposed_h   = max(0, avail_h − sync_end(i−1))
//! start_h     = max(sync_end(i−1), avail_h)
//! sync_end(i) = max_h(start_h + span_h) + dp_sync
//! ```
//!
//! where `span_h` is host `h`'s worst replica makespan. With every plan
//! available in time, `sync_end(i) − sync_end(i−1)` degenerates to
//! exactly the serial iteration time, so the cluster wall can only
//! exceed the ideal by genuinely exposed distribution latency — which is
//! what [`ClusterReport`] itemizes per host.

use crate::churn::{ChurnEvent, Membership};
use crate::report::{ChurnStats, ClusterReport, ExecutorHostStats, PlannerHostStats};
use crate::topology::ClusterConfig;
use dynapipe_core::driver::{record_iteration, IterationPlanner, RunConfig, RunReport};
use dynapipe_core::planner::{IterationPlan, PlanError};
use dynapipe_core::runtime::{
    decode_for_execution, execute_lowered, plan_lower_push, DuplicatePush, PlanAheadQueue,
    ReplicaParallelism, ReplicaPrograms, TicketGuard, WaitOutcome,
};
use dynapipe_core::store::InstructionStore;
use dynapipe_batcher::PaddingStats;
use dynapipe_data::{BatchStream, Dataset, GlobalBatchConfig};
use dynapipe_sim::{Link, LinkModel};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Crashed-counterpart bound for store waits (mirrors the core runtime):
/// reaching it means a dead peer, not backpressure.
const STORE_WAIT: Duration = Duration::from_secs(60);

/// What a planner worker reports through the queue once its blob is in
/// the store: the distribution accounting, annotated with the producing
/// worker — the payload itself travels only through the store.
struct ClusterPlanned {
    /// Global worker index (maps to a planner host and to that worker's
    /// uplink connection).
    worker: usize,
    plan_us: f64,
    lower_us: f64,
    serialize_us: f64,
    blob_bytes: usize,
    /// Real µs since run start when the push completed.
    pushed_at_us: f64,
}

/// What the prefetcher hands the executor per iteration.
struct ClaimedCluster {
    meta: ClusterPlanned,
    outcome: Result<(IterationPlan, Vec<ReplicaPrograms>), PlanError>,
    /// Real µs one host spends decoding its copy of the blob.
    decode_us: f64,
    /// Replica → executor-host placement in force for this iteration.
    /// Snapshotted by the prefetcher (the thread that applies churn
    /// events, possibly several iterations ahead of the executor), so
    /// the executor's accounting follows the placement the iteration
    /// was *fetched* under, deterministically.
    placement: Vec<usize>,
}

enum Prefetched {
    Iteration(Box<ClaimedCluster>),
    EndOfEpoch,
    /// The store lost a blob the queue promised (crashed counterpart /
    /// corrupt wire blob).
    Lost(String),
}

/// Run (a prefix of) one training epoch on the simulated multi-host
/// cluster.
///
/// The returned [`RunReport`] is bit-identical to
/// [`dynapipe_core::run_training`] with the same arguments — any
/// topology, codec or link speed (`RunReport::behavior_eq`; pinned by
/// `tests/cluster_equivalence.rs`). The [`ClusterReport`] carries the
/// per-host and wire accounting.
pub fn run_training_cluster(
    planner: &dyn IterationPlanner,
    dataset: &Dataset,
    gbs: GlobalBatchConfig,
    run: RunConfig,
    cluster: ClusterConfig,
) -> (RunReport, ClusterReport) {
    let cm = planner.cost_model();
    let cluster = cluster.normalized(cm.parallel.dp);
    let cap = run.max_iterations.unwrap_or(usize::MAX);
    let stream = BatchStream::new(dataset, gbs);
    let queue: PlanAheadQueue<ClusterPlanned> = PlanAheadQueue::new(cluster.plan_ahead, cap);
    // Window slots count store occupancy (ticket held from push to take),
    // so the capacity is a hard backstop, not an active gate.
    let store = InstructionStore::with_capacity(cluster.plan_ahead);
    // lint:allow(wall-clock): host wall-clock for ClusterReport.host_wall_us, excluded from behavior_eq
    let t0 = Instant::now();

    // Planner-host roster: the configured hosts plus one slot per
    // scripted join. Joined hosts' worker threads are spawned up front
    // but parked behind the membership gate, so a join event activates
    // them instantly (and deterministically — no mid-run thread spawn
    // racing the claim loop).
    let script = cluster.churn.clone();
    let mut host_workers: Vec<usize> = vec![cluster.workers_per_host; cluster.planner_hosts];
    host_workers.extend(script.joining_hosts());
    let worker_host: Vec<usize> = host_workers
        .iter()
        .enumerate()
        .flat_map(|(h, &n)| std::iter::repeat(h).take(n))
        .collect();
    let membership = Membership::new(cluster.planner_hosts, host_workers.len() - cluster.planner_hosts);
    let ledger: Mutex<ChurnStats> = Mutex::new(ChurnStats::default());

    let mut report = RunReport {
        planner: planner.label(),
        records: Vec::new(),
        total_tokens: 0,
        total_time_us: 0.0,
        padding: PaddingStats::default(),
        failure: None,
    };
    let mut out = ClusterReport {
        topology: cluster.label(),
        codec: cluster.codec.label().to_string(),
        plan_ahead: cluster.plan_ahead,
        planner_hosts: host_workers
            .iter()
            .enumerate()
            .map(|(h, &workers)| PlannerHostStats {
                host: h,
                workers,
                ..Default::default()
            })
            .collect(),
        executor_hosts: (0..cluster.executor_hosts)
            .map(|h| ExecutorHostStats {
                host: h,
                ..Default::default()
            })
            .collect(),
        ..Default::default()
    };

    // One uplink *connection* per planner worker into the store (a
    // worker's pushes are ordered in time, so the FIFO math replays
    // exactly; a per-host shared link would be replayed in iteration
    // order, which races push order across workers and would charge
    // phantom queueing), one downlink per executor host out of it;
    // host 0 is colocated with the store. Downlinks are legitimately
    // FIFO in iteration order: the executor demands blobs in order, so
    // fetch i+1 cannot start before fetch i finishes on that host's
    // link.
    let mut uplinks: Vec<Link> = (0..worker_host.len())
        .map(|_| Link::new(cluster.link))
        .collect();
    let mut downlinks: Vec<Link> = (0..cluster.executor_hosts)
        .map(|h| {
            Link::new(if h == 0 {
                LinkModel::local()
            } else {
                cluster.link
            })
        })
        .collect();

    let nested_threads = (rayon::current_num_threads() / cluster.total_workers().max(1)).max(1);

    std::thread::scope(|scope| {
        for (w, &host) in worker_host.iter().enumerate() {
            let queue = &queue;
            let stream = &stream;
            let store = &store;
            let membership = &membership;
            let ledger = &ledger;
            let cluster = &cluster;
            scope.spawn(move || {
                // Scripted-join hosts park here until their event fires.
                if !membership.wait_active(host) {
                    return;
                }
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(nested_threads)
                    .build()
                    .expect("planner worker pool");
                pool.install(|| {
                    while let Some(ticket) = queue.claim(stream, w) {
                        // A crash takes effect at the claim boundary:
                        // the dead host's worker hands the ticket
                        // straight back for the survivors.
                        if !membership.is_alive(host) {
                            queue.abandon(ticket.index, w);
                            return;
                        }
                        // A scripted straggle delays this host's next
                        // attempt *before* planning starts — the window
                        // the executor's re-issue deadline is built to
                        // detect.
                        if let Some(delay) = membership.take_straggle(host) {
                            std::thread::sleep(delay);
                        }
                        let guard = TicketGuard::new(queue, Some(store));
                        // Shared with the core runtime's store-backed
                        // worker: plan, lower owned, encode, push. Under
                        // churn an iteration may race two byte-identical
                        // blobs (straggler vs re-issue): whichever lands
                        // second is discarded at the store door.
                        let push = plan_lower_push(
                            planner,
                            store,
                            cluster.codec,
                            ticket.index,
                            &ticket.batch,
                            DuplicatePush::Discard,
                        );
                        if push.discarded {
                            ledger
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .duplicate_blobs_discarded += 1;
                        }
                        queue.complete(
                            ticket.index,
                            ticket.generation,
                            ClusterPlanned {
                                worker: w,
                                plan_us: push.plan_us,
                                lower_us: push.lower_us,
                                serialize_us: push.serialize_us,
                                blob_bytes: push.blob_bytes,
                                pushed_at_us: t0.elapsed().as_secs_f64() * 1e6,
                            },
                        );
                        guard.disarm();
                        if !membership.is_alive(host) {
                            return; // crashed mid-plan: stop claiming
                        }
                    }
                });
            });
        }

        // Executor-side prefetcher: take each blob in order, decode it
        // ahead of execution (one decode stands in for the per-host
        // decodes, which would run in parallel on identical bytes), and
        // hand the executable plan over a bounded channel.
        //
        // The prefetcher is also the **churn event loop**: it is the one
        // thread that observes iteration boundaries strictly in order,
        // so scripted events key off its progress — applied before the
        // wait for the keyed iteration's plan, and the placement in
        // force is snapshotted per iteration for the executor's
        // accounting (the prefetcher runs ahead, so the executor must
        // not read live placement state).
        let (tx, rx) = std::sync::mpsc::sync_channel::<Prefetched>(1);
        {
            let queue = &queue;
            let store = &store;
            let membership = &membership;
            let ledger = &ledger;
            let script = &script;
            let worker_host = &worker_host;
            let cluster = &cluster;
            let dp = cm.parallel.dp.max(1);
            scope.spawn(move || {
                let mut executor_alive = vec![true; cluster.executor_hosts];
                let mut replica_host: Vec<usize> =
                    (0..dp).map(|r| cluster.executor_host_of(r)).collect();
                for it in 0..cap {
                    // --- Scripted churn due at this iteration ---------
                    for ev in script.events_at(it) {
                        let mut led = ledger.lock().unwrap_or_else(|e| e.into_inner());
                        match ev {
                            ChurnEvent::PlannerCrash { host } => {
                                if membership.crash(*host) {
                                    led.events_applied += 1;
                                    led.planner_crashes += 1;
                                    // Everything the dead host's workers
                                    // held goes back to the survivors.
                                    queue.reissue_claimed_by(|w| worker_host[w] == *host);
                                } else {
                                    led.events_ignored += 1;
                                }
                            }
                            ChurnEvent::PlannerJoin { .. } => {
                                if membership.activate_next().is_some() {
                                    led.events_applied += 1;
                                    led.planner_joins += 1;
                                } else {
                                    led.events_ignored += 1;
                                }
                            }
                            ChurnEvent::Straggle { host, delay_ms } => {
                                if membership
                                    .straggle(*host, Duration::from_millis(*delay_ms))
                                {
                                    led.events_applied += 1;
                                    led.straggles += 1;
                                } else {
                                    led.events_ignored += 1;
                                }
                            }
                            ChurnEvent::ExecutorLoss { host } => {
                                let survivors: Vec<usize> = (0..cluster.executor_hosts)
                                    .filter(|&h| h != *host && executor_alive[h])
                                    .collect();
                                // Host 0 holds the store; losing it (or
                                // the last survivor) is fail-stop, not
                                // churn. A dead/unknown host is a no-op.
                                if *host == 0
                                    || *host >= cluster.executor_hosts
                                    || !executor_alive[*host]
                                    || survivors.is_empty()
                                {
                                    led.events_ignored += 1;
                                } else {
                                    executor_alive[*host] = false;
                                    led.events_applied += 1;
                                    led.executor_losses += 1;
                                    // Re-place the lost host's replicas
                                    // round-robin onto the survivors;
                                    // their plans re-distribute from the
                                    // store over the survivors' own
                                    // downlinks from here on.
                                    for (r, h) in replica_host.iter_mut().enumerate() {
                                        if *h == *host {
                                            *h = survivors[r % survivors.len()];
                                            led.replicas_moved += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let placement = replica_host.clone();

                    // --- Bounded wait + straggler re-issue ------------
                    let meta = loop {
                        match queue.wait_for_deadline(it, cluster.reissue_deadline) {
                            WaitOutcome::Cancelled => return,
                            WaitOutcome::EndOfEpoch => {
                                let _ = tx.send(Prefetched::EndOfEpoch);
                                return;
                            }
                            WaitOutcome::Deadline => {
                                // The plan is overdue: suspect the
                                // holder and re-issue the ticket to the
                                // next healthy claimant, then keep
                                // waiting (first completion wins).
                                let mut led =
                                    ledger.lock().unwrap_or_else(|e| e.into_inner());
                                led.deadline_expiries += 1;
                                drop(led);
                                let min_age = cluster
                                    .reissue_deadline
                                    .expect("Deadline implies a deadline was set");
                                queue.reissue(it, min_age);
                            }
                            WaitOutcome::Planned(p) => break p,
                        }
                    };
                    // Time the *decode* alone: the wait-for-arrival and
                    // the store take model the fetch, which the timeline
                    // already charges as downlink wire time.
                    let taken = store.take_blocking(it, STORE_WAIT);
                    queue.advance(it); // blob out of the store: slot free
                    // lint:allow(wall-clock): decode timing for ExecutorHostStats.decode_us, a stats field only
                    let t_decode = Instant::now();
                    let decoded = taken.map_err(|e| format!("take: {e}")).and_then(|blob| {
                        decode_for_execution(cluster.codec, blob)
                            .map_err(|e| format!("decode: {e}"))
                    });
                    let decode_us = t_decode.elapsed().as_secs_f64() * 1e6;
                    let (iteration, outcome) = match decoded {
                        Ok(s) => s,
                        Err(e) => {
                            let _ = tx.send(Prefetched::Lost(format!(
                                "instruction store lost iteration {it}: {e}"
                            )));
                            return;
                        }
                    };
                    debug_assert_eq!(iteration, it, "blob is self-describing");
                    let claimed = ClaimedCluster {
                        meta,
                        outcome,
                        decode_us,
                        placement,
                    };
                    if tx.send(Prefetched::Iteration(Box::new(claimed))).is_err() {
                        return; // executor stopped consuming
                    }
                }
                let _ = tx.send(Prefetched::EndOfEpoch);
            });
        }

        // The executor: strictly in order on the caller thread, folding
        // the per-host timelines as it goes.
        let mut vclock = 0.0f64;
        for it in 0..cap {
            let claimed = match rx.recv() {
                Ok(Prefetched::EndOfEpoch) => break,
                Ok(Prefetched::Lost(e)) => {
                    queue.cancel();
                    panic!("{e}");
                }
                Err(_) => {
                    // Prefetcher died without a message: a planner worker
                    // panicked under it; unblock the pool and re-raise.
                    queue.cancel();
                    panic!("a planner worker panicked while planning ahead");
                }
                Ok(Prefetched::Iteration(c)) => c,
            };
            let ClaimedCluster {
                meta,
                outcome,
                decode_us,
                placement,
            } = *claimed;
            let (plan, programs) = match outcome {
                Ok(x) => x,
                Err(e) => {
                    report.failure = Some(format!("iteration {it}: {e}"));
                    break;
                }
            };
            let exec = match execute_lowered(
                cm,
                &plan,
                &programs,
                &run,
                it,
                ReplicaParallelism::Parallel,
            ) {
                Ok(x) => x,
                Err(e) => {
                    report.failure = Some(format!("iteration {it}: {e}"));
                    break;
                }
            };

            // --- Wire + per-host timeline ---------------------------------
            let bytes = meta.blob_bytes as u64;
            let p = worker_host[meta.worker];
            let up_before = uplinks[meta.worker].wire_us();
            let at_store = uplinks[meta.worker].transmit(meta.pushed_at_us, bytes);
            let ph = &mut out.planner_hosts[p];
            ph.plans_produced += 1;
            ph.plan_us += meta.plan_us;
            ph.lower_us += meta.lower_us;
            ph.serialize_us += meta.serialize_us;
            ph.bytes_pushed += bytes;
            ph.push_wire_us += uplinks[meta.worker].wire_us() - up_before;

            // Hosts with at least one replica this iteration fetch the
            // blob and run their share.
            let mut spans = vec![f64::NEG_INFINITY; cluster.executor_hosts];
            for (r, &makespan) in exec.replica_makespans.iter().enumerate() {
                // Placement under churn: the snapshot the prefetcher took
                // when it fetched this iteration (initially
                // `r % executor_hosts`; re-placed on executor loss).
                let h = placement.get(r).copied().unwrap_or_else(|| cluster.executor_host_of(r));
                spans[h] = spans[h].max(makespan);
                if !out.executor_hosts[h].replicas.contains(&r) {
                    out.executor_hosts[h].replicas.push(r);
                }
            }
            let mut sync_end = f64::NEG_INFINITY;
            for (h, &span) in spans.iter().enumerate() {
                if span == f64::NEG_INFINITY {
                    continue; // no replica landed here this iteration
                }
                let down_before = downlinks[h].wire_us();
                let arrival = downlinks[h].transmit(at_store, bytes);
                let avail = arrival + decode_us;
                let eh = &mut out.executor_hosts[h];
                if h != 0 {
                    eh.bytes_fetched += bytes;
                }
                eh.fetch_wire_us += downlinks[h].wire_us() - down_before;
                eh.decode_us += decode_us;
                eh.exposed_us += (avail - vclock).max(0.0);
                eh.busy_us += span;
                let start = vclock.max(avail);
                sync_end = sync_end.max(start + span);
            }
            let end = sync_end + plan.dp_sync_time;
            // How much later the sync finished than it would have with
            // every plan instantly available.
            out.exposed_us += (end - vclock - exec.measured_time).max(0.0);
            vclock = end;

            out.exec_sim_us += exec.measured_time;
            out.serialize_us += meta.serialize_us;
            out.decode_us += decode_us * spans.iter().filter(|s| s.is_finite()).count() as f64;
            out.total_planning_us += meta.plan_us + meta.lower_us;
            if cluster.codec == dynapipe_core::PlanCodec::Flat {
                // Every host with a replica this iteration ran engines
                // straight over its fetched copy of the blob.
                out.flat_wire_bytes +=
                    bytes * spans.iter().filter(|s| s.is_finite()).count() as u64;
            }
            out.iterations += 1;

            record_iteration(
                &mut report,
                cm,
                &plan,
                exec.measured_time,
                exec.peak_memory,
                exec.allocator_stall_us,
            );
        }
        out.cluster_wall_us = vclock;
        // Teardown: stop workers waiting on the window or about to claim
        // past a failure, wake a prefetcher stuck on a plan that will
        // never come, and release the workers of scripted-join hosts
        // whose event never fired.
        queue.cancel();
        membership.shutdown();
        drop(rx);
    });

    // Workers joined: sweep speculative blobs past a failure.
    store.clear_remaining();
    out.store = store.stats();

    // Fold the queue's churn counters into the ledger.
    let mut churn = ledger.into_inner().unwrap_or_else(|e| e.into_inner());
    let qc = queue.churn_stats();
    churn.tickets_reissued = qc.reissued;
    churn.stale_completions = qc.stale_completions;
    out.churn = churn;

    // Cluster totals. Host pipeline cost counts every host's decode (each
    // fetching host burns its own CPU on its copy).
    out.total_planning_us += out.serialize_us + out.decode_us;
    out.total_wire_us = uplinks.iter().map(Link::wire_us).sum::<f64>()
        + downlinks.iter().map(Link::wire_us).sum::<f64>();
    let pushed: u64 = out.planner_hosts.iter().map(|h| h.bytes_pushed).sum();
    out.wire_bytes = pushed
        + out
            .executor_hosts
            .iter()
            .map(|h| h.bytes_fetched)
            .sum::<u64>();
    out.mean_blob_bytes = if out.iterations > 0 {
        pushed as f64 / out.iterations as f64
    } else {
        0.0
    };
    out.serial_wall_us = out.total_planning_us + out.exec_sim_us;
    let to_hide = out.total_planning_us + out.total_wire_us;
    out.overlap_ratio = if to_hide > 0.0 {
        (to_hide - out.exposed_us).max(0.0) / to_hide
    } else {
        1.0
    };
    for eh in &mut out.executor_hosts {
        // Per-host overlap: the host's share of the upstream pipeline
        // (planning + lowering + serialize, split evenly across hosts —
        // they all consume the same plans) plus its own fetch wire and
        // decode, minus what it actually had to wait out on its timeline.
        let upstream = (out.total_planning_us - out.decode_us) / cluster.executor_hosts as f64;
        let total = upstream + eh.fetch_wire_us + eh.decode_us;
        eh.hidden_us = (total - eh.exposed_us).max(0.0);
        eh.overlap_ratio = if total > 0.0 {
            eh.hidden_us / total
        } else {
            1.0
        };
    }
    out.host_wall_us = t0.elapsed().as_secs_f64() * 1e6;
    (report, out)
}
