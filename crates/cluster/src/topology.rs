//! Cluster topology: where planners, store shards, and executors live,
//! and what the fabric between them costs.

use crate::churn::ChurnScript;
use crate::shard::StorePlacement;
use dynapipe_core::PlanCodec;
use dynapipe_model::HardwareModel;
use dynapipe_sim::{Fabric, LinkModel};
use std::time::Duration;

/// Placement and sizing of a simulated multi-host deployment (Fig. 9).
///
/// Hosts live in one **global index space** the [`Fabric`] prices
/// transfers over: executor hosts occupy `[0, executor_hosts)` and
/// planner hosts sit above them (`executor_host + planner_index`), so
/// rack boundaries fall wherever the fabric's `hosts_per_rack` puts
/// them, executors first.
///
/// Under [`StorePlacement::Single`] the instruction store is colocated
/// with **executor host 0** (the paper parks Redis in one training
/// machine's host memory), so that host's fetch hop is free while every
/// other hop — each planner host's push and each remaining executor
/// host's fetch — pays the fabric. Under [`StorePlacement::Sharded`]
/// each executor host owns one store shard and iteration `i`'s blob
/// routes to shard `i % executor_hosts` (see [`crate::shard`]).
/// Data-parallel replica `r` initially executes on host
/// `r % executor_hosts`; a scripted executor-host loss re-places its
/// replicas onto the survivors.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Planner machines (≥ 1), each running `workers_per_host` planner
    /// workers against the shared plan-ahead window. Scripted joins add
    /// hosts beyond this count at run time.
    pub planner_hosts: usize,
    /// Planner worker threads per planner host (≥ 1).
    pub workers_per_host: usize,
    /// Executor machines (≥ 1); clamped to the data-parallel degree at
    /// run time (a host with no replica would have nothing to execute).
    pub executor_hosts: usize,
    /// Bounded plan-ahead window shared by the whole planner pool, also
    /// the store's capacity (≥ 1).
    pub plan_ahead: usize,
    /// Wire codec for every plan blob on every hop.
    pub codec: PlanCodec,
    /// Host-pair α-β cost matrix for every hop. [`Fabric::free`]
    /// degenerates the topology to free transport (useful as an A/B
    /// control); [`Fabric::uniform`] reproduces the single-`LinkModel`
    /// configuration of earlier revisions; [`Fabric::datacenter`] adds
    /// rack locality and cross-rack oversubscription.
    pub fabric: Fabric,
    /// Where the instruction store lives: one host (the paper's
    /// deployment) or one shard per executor host.
    pub placement: StorePlacement,
    /// Scripted fault injection (empty = undisturbed run). Events are
    /// applied deterministically at iteration boundaries; see
    /// [`crate::churn`].
    pub churn: ChurnScript,
    /// How long the executor waits on one iteration's plan before
    /// suspecting its planner and re-issuing the ticket to a healthy
    /// worker. `None` (the default) waits unboundedly — straggler
    /// recovery off. First-completion-wins semantics make an
    /// aggressive deadline safe: a spurious re-issue wastes a replan
    /// but cannot change behavior or livelock the run.
    pub reissue_deadline: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 4,
            codec: PlanCodec::default(),
            fabric: ClusterConfig::fabric_from_hardware(&HardwareModel::a100_cluster()),
            placement: StorePlacement::Single,
            churn: ChurnScript::new(),
            reissue_deadline: None,
        }
    }
}

impl ClusterConfig {
    /// The inter-host hop implied by a hardware model's inter-node
    /// network (the same α-β numbers the cost model charges for
    /// cross-node tensor traffic).
    pub fn link_from_hardware(hw: &HardwareModel) -> LinkModel {
        LinkModel::new(hw.inter_node_latency_us, hw.inter_node_bw)
            .expect("hardware inter-node numbers form a valid link model")
    }

    /// A uniform fabric over the hardware model's inter-node hop — every
    /// distinct-host pair costs the same, the flat-network assumption of
    /// earlier revisions.
    pub fn fabric_from_hardware(hw: &HardwareModel) -> Fabric {
        Fabric::uniform(Self::link_from_hardware(hw))
            .expect("hardware inter-node numbers form a valid link model")
    }

    /// A rack-structured fabric from a hardware model: same-rack pairs
    /// ride the intra-node numbers, cross-rack pairs the inter-node
    /// numbers divided by `oversubscription` — the oversubscribed
    /// fat-tree of a real datacenter.
    pub fn datacenter_fabric(
        hw: &HardwareModel,
        hosts_per_rack: usize,
        oversubscription: f64,
    ) -> Fabric {
        Fabric::datacenter(
            hosts_per_rack,
            LinkModel::new(hw.intra_node_latency_us, hw.intra_node_bw)
                .expect("hardware intra-node numbers form a valid link model"),
            LinkModel::new(hw.inter_node_latency_us, hw.inter_node_bw)
                .expect("hardware inter-node numbers form a valid link model"),
            oversubscription,
        )
        .expect("hardware rack fabric is valid")
    }

    /// Clamp every dimension to its minimum and the executor count to
    /// the data-parallel degree.
    pub fn normalized(self, dp: usize) -> Self {
        ClusterConfig {
            planner_hosts: self.planner_hosts.max(1),
            workers_per_host: self.workers_per_host.max(1),
            executor_hosts: self.executor_hosts.max(1).min(dp.max(1)),
            plan_ahead: self.plan_ahead.max(1),
            ..self
        }
    }

    /// Total planner workers across hosts.
    pub fn total_workers(&self) -> usize {
        self.planner_hosts * self.workers_per_host
    }

    /// Which planner host worker `w` runs on.
    pub fn planner_host_of(&self, worker: usize) -> usize {
        worker / self.workers_per_host
    }

    /// Which executor host data-parallel replica `r` runs on.
    pub fn executor_host_of(&self, replica: usize) -> usize {
        replica % self.executor_hosts
    }

    /// Store shards under this config's placement (1 for `Single`, the
    /// executor-host count for `Sharded`).
    pub fn num_shards(&self) -> usize {
        match self.placement {
            StorePlacement::Single => 1,
            StorePlacement::Sharded => self.executor_hosts,
        }
    }

    /// Global fabric index of an executor host (executors fill the
    /// bottom of the host space, racks first).
    pub fn executor_global(&self, host: usize) -> usize {
        host
    }

    /// Global fabric index of a planner host (stacked above the
    /// executors; scripted joins extend upward).
    pub fn planner_global(&self, planner_host: usize) -> usize {
        self.executor_hosts + planner_host
    }

    /// Compact topology label for reports: `"2p×1w→2e"`.
    pub fn label(&self) -> String {
        format!(
            "{}p×{}w→{}e",
            self.planner_hosts, self.workers_per_host, self.executor_hosts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_and_assignment_round_robins() {
        let c = ClusterConfig {
            planner_hosts: 0,
            workers_per_host: 0,
            executor_hosts: 5,
            plan_ahead: 0,
            ..Default::default()
        }
        .normalized(2);
        assert_eq!(
            (c.planner_hosts, c.workers_per_host, c.executor_hosts, c.plan_ahead),
            (1, 1, 2, 1)
        );
        assert_eq!(c.executor_host_of(0), 0);
        assert_eq!(c.executor_host_of(1), 1);
        assert_eq!(c.executor_host_of(2), 0);
        let c = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 3,
            ..Default::default()
        };
        assert_eq!(c.total_workers(), 6);
        assert_eq!(c.planner_host_of(0), 0);
        assert_eq!(c.planner_host_of(2), 0);
        assert_eq!(c.planner_host_of(3), 1);
        assert_eq!(c.label(), "2p×3w→1e");
    }

    #[test]
    fn global_host_space_stacks_planners_above_executors() {
        let c = ClusterConfig {
            planner_hosts: 2,
            executor_hosts: 3,
            ..Default::default()
        };
        assert_eq!(c.executor_global(0), 0);
        assert_eq!(c.executor_global(2), 2);
        assert_eq!(c.planner_global(0), 3);
        assert_eq!(c.planner_global(1), 4);
        assert_eq!(c.num_shards(), 1, "single placement is one shard");
        let c = ClusterConfig {
            placement: StorePlacement::Sharded,
            executor_hosts: 3,
            ..Default::default()
        };
        assert_eq!(c.num_shards(), 3);
    }

    #[test]
    fn hardware_fabrics_are_valid_and_priced() {
        let hw = HardwareModel::a100_cluster();
        let flat = ClusterConfig::fabric_from_hardware(&hw);
        assert_eq!(flat.model(0, 1), ClusterConfig::link_from_hardware(&hw));
        let dc = ClusterConfig::datacenter_fabric(&hw, 4, 4.0);
        // In rack: intra-node numbers; across: oversubscribed inter.
        assert_eq!(dc.model(0, 1).bandwidth, hw.intra_node_bw);
        assert_eq!(dc.model(0, 4).bandwidth, hw.inter_node_bw / 4.0);
        assert!(dc.model(0, 4).transfer_us(1 << 20) > dc.model(0, 1).transfer_us(1 << 20));
    }
}
