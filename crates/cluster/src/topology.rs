//! Cluster topology: where planners, the store, and executors live.

use crate::churn::ChurnScript;
use dynapipe_core::PlanCodec;
use dynapipe_model::HardwareModel;
use dynapipe_sim::LinkModel;
use std::time::Duration;

/// Placement and sizing of a simulated multi-host deployment (Fig. 9).
///
/// The instruction store is colocated with **executor host 0** (the
/// paper parks Redis in one training machine's host memory), so that
/// host's fetch hop is free while every other hop — each planner host's
/// push and each remaining executor host's fetch — pays the configured
/// [`LinkModel`]. Data-parallel replica `r` initially executes on host
/// `r % executor_hosts`; a scripted executor-host loss re-places its
/// replicas onto the survivors.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Planner machines (≥ 1), each running `workers_per_host` planner
    /// workers against the shared plan-ahead window. Scripted joins add
    /// hosts beyond this count at run time.
    pub planner_hosts: usize,
    /// Planner worker threads per planner host (≥ 1).
    pub workers_per_host: usize,
    /// Executor machines (≥ 1); clamped to the data-parallel degree at
    /// run time (a host with no replica would have nothing to execute).
    pub executor_hosts: usize,
    /// Bounded plan-ahead window shared by the whole planner pool, also
    /// the store's capacity (≥ 1).
    pub plan_ahead: usize,
    /// Wire codec for every plan blob on every hop.
    pub codec: PlanCodec,
    /// α-β cost of one inter-host hop. [`LinkModel::local`] degenerates
    /// the topology to free transport (useful as an A/B control).
    pub link: LinkModel,
    /// Scripted fault injection (empty = undisturbed run). Events are
    /// applied deterministically at iteration boundaries; see
    /// [`crate::churn`].
    pub churn: ChurnScript,
    /// How long the executor waits on one iteration's plan before
    /// suspecting its planner and re-issuing the ticket to a healthy
    /// worker. `None` (the default) waits unboundedly — straggler
    /// recovery off. First-completion-wins semantics make an
    /// aggressive deadline safe: a spurious re-issue wastes a replan
    /// but cannot change behavior or livelock the run.
    pub reissue_deadline: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 4,
            codec: PlanCodec::default(),
            link: ClusterConfig::link_from_hardware(&HardwareModel::a100_cluster()),
            churn: ChurnScript::new(),
            reissue_deadline: None,
        }
    }
}

impl ClusterConfig {
    /// The inter-host hop implied by a hardware model's inter-node
    /// network (the same α-β numbers the cost model charges for
    /// cross-node tensor traffic).
    pub fn link_from_hardware(hw: &HardwareModel) -> LinkModel {
        LinkModel {
            latency_us: hw.inter_node_latency_us,
            bandwidth: hw.inter_node_bw,
        }
    }

    /// Clamp every dimension to its minimum and the executor count to
    /// the data-parallel degree.
    pub fn normalized(self, dp: usize) -> Self {
        ClusterConfig {
            planner_hosts: self.planner_hosts.max(1),
            workers_per_host: self.workers_per_host.max(1),
            executor_hosts: self.executor_hosts.max(1).min(dp.max(1)),
            plan_ahead: self.plan_ahead.max(1),
            ..self
        }
    }

    /// Total planner workers across hosts.
    pub fn total_workers(&self) -> usize {
        self.planner_hosts * self.workers_per_host
    }

    /// Which planner host worker `w` runs on.
    pub fn planner_host_of(&self, worker: usize) -> usize {
        worker / self.workers_per_host
    }

    /// Which executor host data-parallel replica `r` runs on.
    pub fn executor_host_of(&self, replica: usize) -> usize {
        replica % self.executor_hosts
    }

    /// Compact topology label for reports: `"2p×1w→2e"`.
    pub fn label(&self) -> String {
        format!(
            "{}p×{}w→{}e",
            self.planner_hosts, self.workers_per_host, self.executor_hosts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_and_assignment_round_robins() {
        let c = ClusterConfig {
            planner_hosts: 0,
            workers_per_host: 0,
            executor_hosts: 5,
            plan_ahead: 0,
            ..Default::default()
        }
        .normalized(2);
        assert_eq!(
            (c.planner_hosts, c.workers_per_host, c.executor_hosts, c.plan_ahead),
            (1, 1, 2, 1)
        );
        assert_eq!(c.executor_host_of(0), 0);
        assert_eq!(c.executor_host_of(1), 1);
        assert_eq!(c.executor_host_of(2), 0);
        let c = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 3,
            ..Default::default()
        };
        assert_eq!(c.total_workers(), 6);
        assert_eq!(c.planner_host_of(0), 0);
        assert_eq!(c.planner_host_of(2), 0);
        assert_eq!(c.planner_host_of(3), 1);
        assert_eq!(c.label(), "2p×3w→1e");
    }
}
