//! Property tests for store-shard routing ([`dynapipe_cluster::shard`])
//! plus a small end-to-end check that the runtime's per-shard counters
//! follow the same arithmetic across both placements and all three wire
//! codecs.
//!
//! The properties the datacenter sweep leans on:
//!
//! * every iteration maps to **exactly one** shard, and that shard's
//!   owner is always a real executor host — under any placement, any
//!   host count, before and after any legal loss sequence;
//! * an executor-host loss re-owns **only** the lost host's shards:
//!   surviving assignments are bit-stable, which is what bounds churn
//!   recovery to the dead host's share of the store.

use dynapipe_cluster::{
    run_training_cluster, ClusterConfig, ShardMap, StorePlacement,
};
use dynapipe_core::{run_training, DynaPipePlanner, PlanCodec, PlannerConfig, RunConfig};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use proptest::prelude::*;
use std::sync::Arc;

const PLACEMENTS: [StorePlacement; 2] = [StorePlacement::Single, StorePlacement::Sharded];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_iteration_maps_to_exactly_one_owned_shard(
        hosts in 1usize..12,
        iterations in 1usize..200,
    ) {
        for placement in PLACEMENTS {
            let map = ShardMap::new(placement, hosts);
            prop_assert!(map.num_shards() >= 1);
            for it in 0..iterations {
                let s = map.shard_of(it);
                prop_assert!(s < map.num_shards(), "shard index in range");
                // Routing is a pure function of the iteration.
                prop_assert_eq!(s, map.shard_of(it));
                let owner = map.owner(s);
                prop_assert!(owner < hosts, "owner must be a real executor host");
                prop_assert_eq!(map.host_of(it), owner);
            }
        }
    }

    #[test]
    fn loss_reowns_only_the_lost_hosts_shards(
        hosts in 2usize..12,
        losses in proptest::collection::vec(0usize..12, 1..6),
    ) {
        for placement in PLACEMENTS {
            let mut map = ShardMap::new(placement, hosts);
            let mut alive: Vec<bool> = vec![true; hosts];
            for lost in losses.iter().copied() {
                let survivors: Vec<usize> = (0..hosts)
                    .filter(|&h| h != lost && alive[h])
                    .collect();
                // Mirror the runtime's guard: dead/unknown hosts and
                // last-survivor losses are ignored, and under the
                // single placement host 0 never dies.
                let store_protected = placement == StorePlacement::Single && lost == 0;
                if store_protected || lost >= hosts || !alive[lost] || survivors.is_empty() {
                    continue;
                }
                alive[lost] = false;
                let before = map.owners().to_vec();
                let lost_count = before.iter().filter(|&&o| o == lost).count();
                let moved = map.reassign_lost(lost, &survivors);
                prop_assert!(
                    moved == lost_count,
                    "every lost shard moves, nothing else: {} vs {}",
                    moved,
                    lost_count
                );
                for (s, (&was, &now)) in
                    before.iter().zip(map.owners().iter()).enumerate()
                {
                    if was == lost {
                        prop_assert!(
                            survivors.contains(&now),
                            "shard {} must land on a survivor, got {}",
                            s,
                            now
                        );
                    } else {
                        prop_assert!(was == now, "surviving assignment {} moved", s);
                    }
                }
                // Invariant after any legal loss: every iteration still
                // routes to exactly one live owner.
                for it in 0..32 {
                    prop_assert!(alive[map.host_of(it)], "iteration routed to a dead host");
                }
            }
        }
    }
}

/// End-to-end: the runtime's per-shard counters follow the pure routing
/// arithmetic — `blobs_stored` per shard is exactly the count of
/// executed iterations `i` with `i % num_shards == shard` — across both
/// placements and all three codecs (routing must be codec-blind).
#[test]
fn runtime_shard_counters_follow_the_routing_arithmetic() {
    let planner = DynaPipePlanner::new(
        Arc::new(CostModel::build(
            HardwareModel::a100_cluster(),
            ModelConfig::gpt_3_35b(),
            ParallelConfig::new(2, 1, 2),
            &ProfileOptions::coarse(),
        )),
        PlannerConfig::default(),
    );
    let dataset = Dataset::flanv2(373, 600);
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 32768,
        max_seq_len: 2048,
    };
    let run = RunConfig {
        max_iterations: Some(4),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs, run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for placement in PLACEMENTS {
        for codec in PlanCodec::ALL {
            let cfg = ClusterConfig {
                planner_hosts: 1,
                workers_per_host: 1,
                executor_hosts: 2,
                plan_ahead: 2,
                codec,
                placement,
                ..Default::default()
            };
            let label = format!("{}/{}", placement.label(), codec.label());
            let (report, stats) = run_training_cluster(&planner, &dataset, gbs, run, cfg);
            serial
                .behavior_eq(&report)
                .unwrap_or_else(|e| panic!("{label}: diverged: {e}"));
            let expect = ShardMap::new(placement, 2);
            assert_eq!(stats.shards.len(), expect.num_shards(), "{label}");
            for (s, stat) in stats.shards.iter().enumerate() {
                let predicted = (0..stats.iterations).filter(|&i| expect.shard_of(i) == s).count();
                assert_eq!(
                    stat.blobs_stored as usize, predicted,
                    "{label}: shard {s} must store exactly its routed iterations"
                );
                assert_eq!(stat.owner, expect.owner(s), "{label}: undisturbed ownership");
            }
        }
    }
}
