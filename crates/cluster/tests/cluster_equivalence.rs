//! The cluster layer's differential harness: **every simulated topology
//! is bit-identical to the serial driver**. Hosts, links and codecs may
//! move time around — they must never move a single bit of behavior
//! (records, totals, failure placement; floats compared by bit pattern
//! via `RunReport::behavior_eq`).
//!
//! The matrix crosses topology shape (single-host, multi-planner,
//! multi-executor), wire codec (JSON / binary / flat), store placement
//! (single vs sharded), fabric (free, uniform, slow, rack-structured),
//! jitter, dp>1, baselines, and a failure-mid-epoch run whose
//! speculative blobs must be swept. It also pins the **wire-byte
//! rule** (see `report.rs`): local copies appear in no wire counter, so
//! on the flat codec `flat_wire_bytes` must reconcile exactly with
//! `Σ bytes_fetched`.

use dynapipe_cluster::{
    run_training_cluster, run_training_cluster_traced, ClusterConfig, ClusterReport,
    StorePlacement,
};
use dynapipe_core::{
    run_training, BaselineKind, BaselinePlanner, DynaPipePlanner, IterationPlanner, PlanCodec,
    PlannerConfig, RunConfig, RunReport,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig, Sample};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use dynapipe_sim::{Fabric, JitterConfig, LinkModel};
use dynapipe_trace::{sim_eq, Trace, TraceSink};
use std::sync::Arc;

/// Large enough that no matrix cell ever drops a span — a dropped span
/// would (correctly) fail `reconcile`, but the failure should then mean
/// a real accounting bug, not an undersized ring.
const TRACE_CAP: usize = 1 << 20;

fn cost_model(pp: usize, dp: usize) -> Arc<CostModel> {
    Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_3_35b(),
        ParallelConfig::new(dp, 1, pp),
        &ProfileOptions::coarse(),
    ))
}

fn gbs(tokens: usize) -> GlobalBatchConfig {
    GlobalBatchConfig {
        tokens_per_batch: tokens,
        max_seq_len: 2048,
    }
}

/// The topology × codec × placement × fabric matrix every scenario runs
/// through.
fn topologies() -> Vec<ClusterConfig> {
    let slow = LinkModel::new(
        500.0, 10.0, // 10 bytes/µs: a 300 KB blob costs ~30 ms
    )
    .expect("slow link model is valid");
    let mut out = Vec::new();
    for codec in PlanCodec::ALL {
        // Degenerate single host, free links: must match the plain
        // store-backed runtime's behavior exactly.
        out.push(ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 2,
            codec,
            fabric: Fabric::free(),
            ..Default::default()
        });
        // Multi-planner, multi-executor over the default (a100
        // inter-node) uniform fabric.
        out.push(ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 2,
            executor_hosts: 2,
            plan_ahead: 3,
            codec,
            ..Default::default()
        });
        // A link slow enough that wire time dominates: exposure may be
        // large, behavior must not budge. (Window 3: a worker becomes
        // eligible to claim speculatively well before a failure can
        // cancel the pool — the failure test relies on it.)
        out.push(ClusterConfig {
            planner_hosts: 3,
            workers_per_host: 1,
            executor_hosts: 2,
            plan_ahead: 3,
            codec,
            fabric: Fabric::uniform(slow).expect("slow fabric is valid"),
            ..Default::default()
        });
        // Sharded store on a rack-structured fabric: pushes and fetches
        // fan out across shard owners, cross-rack hops oversubscribed.
        out.push(ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 1,
            executor_hosts: 2,
            plan_ahead: 3,
            codec,
            placement: StorePlacement::Sharded,
            fabric: ClusterConfig::datacenter_fabric(&HardwareModel::a100_cluster(), 2, 4.0),
            ..Default::default()
        });
    }
    out
}

fn assert_cluster_matrix(
    planner: &dyn IterationPlanner,
    dataset: &Dataset,
    gbs: GlobalBatchConfig,
    run: RunConfig,
    serial: &RunReport,
) -> Vec<ClusterReport> {
    let mut reports = Vec::new();
    // The Sim-domain span timeline is derived purely from the
    // behavior-pinned execution results, so it must be bit-identical
    // across every topology × codec × placement cell: pin every cell's
    // trace against the first.
    let mut pinned: Option<Trace> = None;
    for cluster in topologies() {
        let label = format!(
            "{}/{}/{}",
            cluster.label(),
            cluster.codec.label(),
            cluster.placement.label()
        );
        let plan_ahead = cluster.plan_ahead;
        let sink = TraceSink::bounded(TRACE_CAP);
        let (report, stats) =
            run_training_cluster_traced(planner, dataset, gbs, run, cluster, &sink);
        serial
            .behavior_eq(&report)
            .unwrap_or_else(|e| panic!("{label} diverged from serial: {e}"));
        let mut trace = sink.finish();
        trace.meta = stats.trace_meta(&label);
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{label}: trace validation: {e}"));
        trace
            .reconcile()
            .unwrap_or_else(|e| panic!("{label}: trace reconciliation: {e}"));
        match &pinned {
            Some(first) => sim_eq(first, &trace)
                .unwrap_or_else(|e| panic!("{label}: Sim timeline diverged from first cell: {e}")),
            None => pinned = Some(trace),
        }
        // Store hygiene in every topology: no orphaned blobs, occupancy
        // bounded by the window.
        assert_eq!(stats.store.occupancy, 0, "{label}: orphaned blobs");
        assert_eq!(stats.store.bytes, 0, "{label}: leaked bytes");
        assert!(
            stats.store.peak_occupancy <= plan_ahead.max(1),
            "{label}: store peak {} exceeded window",
            stats.store.peak_occupancy
        );
        // The wire-byte rule reconciles across counters (the regression
        // this matrix pins: flat_wire_bytes used to count the store
        // host's local copy while bytes_fetched excluded it). Zero-copy
        // execution happens exactly over the remote copies on the flat
        // codec, and never on the tree codecs.
        let fetched: u64 = stats.executor_hosts.iter().map(|h| h.bytes_fetched).sum();
        if stats.codec == "flat" {
            assert_eq!(
                stats.flat_wire_bytes, fetched,
                "{label}: flat_wire_bytes must reconcile with Σ bytes_fetched"
            );
        } else {
            assert_eq!(stats.flat_wire_bytes, 0, "{label}: tree codecs never run zero-copy");
        }
        // Shard accounting reconciles with the host-level counters under
        // both placements.
        let served: u64 = stats.shards.iter().map(|s| s.bytes_served).sum();
        assert_eq!(served, fetched, "{label}: shards serve exactly what hosts fetch");
        let shard_pushed: u64 = stats.shards.iter().map(|s| s.bytes_pushed).sum();
        let host_pushed: u64 = stats.planner_hosts.iter().map(|h| h.bytes_pushed).sum();
        assert_eq!(shard_pushed, host_pushed, "{label}: every pushed byte lands on a shard");
        let stored: u64 = stats.shards.iter().map(|s| s.blobs_stored).sum();
        assert_eq!(stored as usize, stats.iterations, "{label}: one blob per iteration");
        for (i, s) in stats.shards.iter().enumerate() {
            assert_eq!(s.shard, i, "{label}: shard index is positional");
            assert!(
                s.owner < stats.executor_hosts.len(),
                "{label}: shard owner must be an executor host"
            );
        }
        // The busiest link cannot carry more than everything that
        // crossed any wire.
        assert!(
            stats.max_link_bytes <= host_pushed + fetched,
            "{label}: max_link_bytes {} exceeds total wire traffic",
            stats.max_link_bytes
        );
        reports.push(stats);
    }
    reports
}

#[test]
fn jittered_runs_are_bit_identical_across_topologies() {
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(211, 500);
    let run = RunConfig {
        max_iterations: Some(3),
        jitter: Some(JitterConfig {
            sigma: 0.08,
            seed: 0xC10C,
        }),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    assert!(serial.feasible(), "fixture must run clean: {:?}", serial.failure);
    let reports = assert_cluster_matrix(&planner, &dataset, gbs(16384), run, &serial);
    for r in &reports {
        assert_eq!(r.iterations, 3);
        // Every planner host's production reconciles with the store
        // counters; every executed iteration crossed the wire.
        let produced: usize = r.planner_hosts.iter().map(|h| h.plans_produced).sum();
        assert_eq!(produced, 3, "{}: all plans accounted to a host", r.topology);
        assert_eq!(r.store.pushes, 3);
        assert_eq!(r.store.takes, 3);
        assert!(r.mean_blob_bytes > 0.0);
        assert!((0.0..=1.0).contains(&r.overlap_ratio), "{}", r.topology);
        for eh in &r.executor_hosts {
            assert!((0.0..=1.0).contains(&eh.overlap_ratio));
        }
    }
}

#[test]
fn data_parallel_replicas_split_across_executor_hosts() {
    let planner = DynaPipePlanner::new(cost_model(2, 2), PlannerConfig::default());
    let dataset = Dataset::flanv2(223, 600);
    let run = RunConfig {
        max_iterations: Some(3),
        jitter: None,
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(32768), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    let reports = assert_cluster_matrix(&planner, &dataset, gbs(32768), run, &serial);
    // In the 2-executor topologies, replica 0 runs on host 0 and
    // replica 1 on host 1. Under the single placement only host 1 pays
    // fetch wire bytes (host 0 is colocated with the store); under the
    // sharded placement ownership alternates per iteration, so *both*
    // hosts fetch remotely for the iterations they don't own.
    for r in reports.iter().filter(|r| r.executor_hosts.len() == 2) {
        assert_eq!(r.executor_hosts[0].replicas, vec![0]);
        assert_eq!(r.executor_hosts[1].replicas, vec![1]);
        if r.placement == "single" {
            assert_eq!(r.executor_hosts[0].bytes_fetched, 0, "{}", r.topology);
        } else {
            assert!(
                r.executor_hosts[0].bytes_fetched > 0,
                "{}: host 0 fetches the iterations shard 1 owns",
                r.topology
            );
        }
        assert!(r.executor_hosts[1].bytes_fetched > 0, "{}", r.topology);
        assert!(r.executor_hosts[0].busy_us > 0.0);
        assert!(r.executor_hosts[1].busy_us > 0.0);
    }
}

#[test]
fn slow_links_expose_wire_time_without_changing_behavior() {
    // A/B on the same workload: free links vs a crawling network. The
    // behavior is pinned by the matrix; here we check the timeline
    // *does* respond to the link model — bytes genuinely cost time.
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(227, 500);
    let run = RunConfig {
        max_iterations: Some(3),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    let base = ClusterConfig {
        planner_hosts: 2,
        workers_per_host: 1,
        executor_hosts: 1,
        plan_ahead: 2,
        codec: PlanCodec::Binary,
        fabric: Fabric::free(),
        ..Default::default()
    };
    let (fast_report, fast) =
        run_training_cluster(&planner, &dataset, gbs(16384), run, base.clone());
    let (slow_report, slow) = run_training_cluster(
        &planner,
        &dataset,
        gbs(16384),
        run,
        ClusterConfig {
            fabric: Fabric::uniform(
                LinkModel::new(1e6 /* one full second per hop */, 1.0)
                    .expect("crawl link is valid"),
            )
            .expect("crawl fabric is valid"),
            ..base
        },
    );
    serial.behavior_eq(&fast_report).unwrap();
    serial.behavior_eq(&slow_report).unwrap();
    assert_eq!(fast.total_wire_us, 0.0, "local links are free");
    assert!(
        slow.total_wire_us > 1e6,
        "slow links must accumulate wire time: {}",
        slow.total_wire_us
    );
    assert!(
        slow.cluster_wall_us > fast.cluster_wall_us,
        "wire latency must appear on the training timeline: {} vs {}",
        slow.cluster_wall_us,
        fast.cluster_wall_us
    );
    assert!(
        slow.exposed_us > fast.exposed_us,
        "a second of latency per blob cannot be fully hidden"
    );
    // Wire time is attributed to the shard that carried the blob (one
    // shard here — single placement), on both sides of the store.
    let slow_shard_wire: f64 = slow
        .shards
        .iter()
        .map(|s| s.push_wire_us + s.fetch_wire_us)
        .sum();
    assert!(
        slow_shard_wire > 1e6,
        "shard wire attribution must see the slow hops: {slow_shard_wire}"
    );
    let fast_shard_wire: f64 = fast
        .shards
        .iter()
        .map(|s| s.push_wire_us + s.fetch_wire_us)
        .sum();
    assert_eq!(fast_shard_wire, 0.0, "free fabric: no shard wire time");
}

#[test]
fn baseline_planners_run_on_the_cluster_too() {
    let planner = BaselinePlanner::new(
        cost_model(2, 1),
        BaselineKind::Packing {
            max_seq_len: 2048,
            max_target_len: 256,
            mb_size: 1,
        },
    );
    let dataset = Dataset::flanv2(229, 400);
    let run = RunConfig {
        max_iterations: Some(2),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    assert_cluster_matrix(&planner, &dataset, gbs(16384), run, &serial);
}

#[test]
fn failure_mid_epoch_stops_every_topology_at_the_same_iteration() {
    // The monster-sample fixture from the core harness: planning fails a
    // few iterations in, each topology must stop with exactly the serial
    // failure and sweep its speculative blobs.
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let mut dataset = Dataset::flanv2(109, 400);
    dataset.samples[130] = Sample {
        id: 130,
        task: 0,
        input_len: 2_000_000,
        target_len: 512,
    };
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 16384,
        max_seq_len: 4_000_000,
    };
    let run = RunConfig {
        max_iterations: Some(20),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs, run);
    assert!(serial.failure.is_some(), "fixture must fail mid-epoch");
    assert!(!serial.records.is_empty());
    let reports = assert_cluster_matrix(&planner, &dataset, gbs, run, &serial);
    for r in &reports {
        assert_eq!(r.iterations, serial.records.len(), "{}", r.topology);
        // The failing iteration's blob always lands (the failure is
        // encoded and pushed like any plan), so pushes strictly exceed
        // the executed records. Additional speculative pushes depend on
        // whether other workers finished their claims before teardown —
        // pure scheduling, not asserted (the old `>= iterations + 2`
        // form was flaky for exactly that reason). What must hold is
        // that every push was reconciled: taken or discarded, never
        // leaked (occupancy==0 is asserted in the matrix helper).
        assert!(
            r.store.pushes as usize >= r.iterations + 1,
            "{}: the failure blob must be pushed, got {} pushes for {} records",
            r.topology,
            r.store.pushes,
            r.iterations
        );
        assert_eq!(
            r.store.takes + r.store.discarded,
            r.store.pushes,
            "{}: every pushed blob is taken or discarded",
            r.topology
        );
    }
}

#[test]
fn zero_iteration_cap_produces_empty_report() {
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(233, 200);
    let run = RunConfig {
        max_iterations: Some(0),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    let (report, stats) =
        run_training_cluster(&planner, &dataset, gbs(16384), run, ClusterConfig::default());
    serial.behavior_eq(&report).unwrap();
    assert!(report.records.is_empty());
    assert_eq!(stats.iterations, 0);
    assert_eq!(stats.cluster_wall_us, 0.0);
}

#[test]
fn binary_codec_shrinks_the_wire_on_identical_behavior() {
    // Same topology, both codecs: identical RunReports (pinned in the
    // matrix), but the binary wire must carry at most half the bytes —
    // the acceptance bar the fig09 bench enforces on the full workload.
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(239, 500);
    let run = RunConfig {
        max_iterations: Some(2),
        ..Default::default()
    };
    let base = ClusterConfig {
        planner_hosts: 1,
        workers_per_host: 2,
        executor_hosts: 1,
        plan_ahead: 2,
        codec: PlanCodec::Json,
        ..Default::default()
    };
    let (ra, json) = run_training_cluster(&planner, &dataset, gbs(16384), run, base.clone());
    let (rb, binary) = run_training_cluster(
        &planner,
        &dataset,
        gbs(16384),
        run,
        ClusterConfig {
            codec: PlanCodec::Binary,
            ..base
        },
    );
    ra.behavior_eq(&rb).unwrap();
    assert!(json.mean_blob_bytes > 0.0 && binary.mean_blob_bytes > 0.0);
    assert!(
        binary.mean_blob_bytes * 2.0 <= json.mean_blob_bytes,
        "binary blob {} bytes must be at most half of JSON {}",
        binary.mean_blob_bytes,
        json.mean_blob_bytes
    );
}
