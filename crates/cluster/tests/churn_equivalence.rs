//! The elastic layer's differential harness: **churn may cost
//! wall-clock time, never behavior**. Every scripted churn scenario —
//! planner-host crash, planner-host join, executor-host loss with
//! replica re-placement, straggler slowdown with deadline re-issue —
//! must produce a [`dynapipe_core::RunReport`] bit-identical
//! (`behavior_eq`) to both the serial driver and the undisturbed
//! cluster run, across every wire codec, with the instruction store
//! empty at the end and every push reconciled (taken or discarded,
//! never orphaned — re-issue duplicates included). Under the sharded
//! store placement the matrix extends to losing shard *owners* —
//! including host 0, which only the single placement protects — whose
//! shards must re-own onto survivors (surviving assignments stable)
//! and whose in-flight blobs must be restored from a surviving peer,
//! all counted in [`dynapipe_cluster::ChurnStats`] and never behavioral.

use dynapipe_cluster::{
    placed_host, run_training_cluster_traced, ChurnEvent, ChurnScript, ClusterConfig,
    ClusterReport, StorePlacement,
};
use dynapipe_core::{
    run_training, DynaPipePlanner, IterationPlanner, PlanCodec, PlannerConfig, RunConfig,
    RunReport,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig, Sample};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use dynapipe_trace::{sim_eq, TraceSink};
use std::sync::Arc;
use std::time::Duration;

/// Span-ring capacity: generous enough that no churn scenario drops a
/// span (a drop would fail `reconcile` with a misleading message).
const TRACE_CAP: usize = 1 << 20;

fn cost_model(pp: usize, dp: usize) -> Arc<CostModel> {
    Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_3_35b(),
        ParallelConfig::new(dp, 1, pp),
        &ProfileOptions::coarse(),
    ))
}

fn gbs(tokens: usize) -> GlobalBatchConfig {
    GlobalBatchConfig {
        tokens_per_batch: tokens,
        max_seq_len: 2048,
    }
}

/// Store hygiene every churned run must satisfy: empty at the end, and
/// `takes + discarded == pushes` — zero orphaned blobs even when
/// re-issue races push byte-identical duplicates.
fn assert_store_reconciles(stats: &ClusterReport, label: &str) {
    assert_eq!(stats.store.occupancy, 0, "{label}: orphaned blobs");
    assert_eq!(stats.store.bytes, 0, "{label}: leaked bytes");
    assert_eq!(
        stats.store.takes + stats.store.discarded,
        stats.store.pushes,
        "{label}: every pushed blob must be taken or discarded"
    );
    assert!(
        stats.store.peak_occupancy <= stats.plan_ahead.max(1),
        "{label}: store peak {} exceeded window",
        stats.store.peak_occupancy
    );
}

/// Run `churned` against its own undisturbed twin and the serial
/// driver; behavior must be pinned three ways. Both runs record span
/// traces, which must validate, reconcile against their own counters,
/// and — the tracing contract under churn — carry **bit-identical
/// Sim-domain timelines**: recovery may add Host-domain spans
/// (re-issues, restores, churn actions), never move a simulated bit.
fn assert_churn_equivalent(
    planner: &dyn IterationPlanner,
    dataset: &Dataset,
    gbs: GlobalBatchConfig,
    run: RunConfig,
    serial: &RunReport,
    churned: ClusterConfig,
    label: &str,
) -> ClusterReport {
    let undisturbed = ClusterConfig {
        churn: ChurnScript::new(),
        reissue_deadline: None,
        ..churned.clone()
    };
    let clean_sink = TraceSink::bounded(TRACE_CAP);
    let (clean_report, clean_stats) =
        run_training_cluster_traced(planner, dataset, gbs, run, undisturbed, &clean_sink);
    serial
        .behavior_eq(&clean_report)
        .unwrap_or_else(|e| panic!("{label}: undisturbed run diverged from serial: {e}"));
    assert_eq!(
        clean_stats.churn.events_applied, 0,
        "{label}: undisturbed run must apply no churn"
    );
    let mut clean_trace = clean_sink.finish();
    clean_trace.meta = clean_stats.trace_meta(&format!("{label}/undisturbed"));
    clean_trace
        .validate()
        .unwrap_or_else(|e| panic!("{label}: undisturbed trace validation: {e}"));
    clean_trace
        .reconcile()
        .unwrap_or_else(|e| panic!("{label}: undisturbed trace reconciliation: {e}"));

    let sink = TraceSink::bounded(TRACE_CAP);
    let (report, stats) = run_training_cluster_traced(planner, dataset, gbs, run, churned, &sink);
    serial
        .behavior_eq(&report)
        .unwrap_or_else(|e| panic!("{label}: churned run diverged from serial: {e}"));
    clean_report
        .behavior_eq(&report)
        .unwrap_or_else(|e| panic!("{label}: churned run diverged from undisturbed: {e}"));
    assert_store_reconciles(&stats, label);
    let mut trace = sink.finish();
    trace.meta = stats.trace_meta(&format!("{label}/churned"));
    trace
        .validate()
        .unwrap_or_else(|e| panic!("{label}: churned trace validation: {e}"));
    trace
        .reconcile()
        .unwrap_or_else(|e| panic!("{label}: churned trace reconciliation: {e}"));
    sim_eq(&clean_trace, &trace)
        .unwrap_or_else(|e| panic!("{label}: churn moved the Sim timeline: {e}"));
    stats
}

#[test]
fn planner_crash_recovers_bit_identically() {
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(311, 600);
    let run = RunConfig {
        max_iterations: Some(4),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 3,
            codec,
            // Crash host 1 as the executor turns to iteration 1: any
            // ticket its worker holds is re-issued to host 0, which
            // carries the rest of the epoch alone.
            churn: ChurnScript::new().at(1, ChurnEvent::PlannerCrash { host: 1 }),
            ..Default::default()
        };
        let label = format!("crash/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs(16384), run, &serial, cfg, &label,
        );
        assert_eq!(stats.iterations, 4, "{label}: full epoch despite the crash");
        assert_eq!(stats.churn.planner_crashes, 1, "{label}");
        assert_eq!(stats.churn.events_applied, 1, "{label}");
        // Whoever planned what, every iteration is accounted to a host.
        let produced: usize = stats.planner_hosts.iter().map(|h| h.plans_produced).sum();
        assert_eq!(produced + stats.store.discarded as usize, stats.store.pushes as usize);
    }
}

#[test]
fn crashing_the_last_planner_host_is_ignored_not_fatal() {
    // A cluster with zero planners is fail-stop territory, not churn:
    // the event must be counted as ignored and the run must proceed
    // undisturbed.
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(313, 400);
    let run = RunConfig {
        max_iterations: Some(2),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    let cfg = ClusterConfig {
        planner_hosts: 1,
        workers_per_host: 1,
        executor_hosts: 1,
        plan_ahead: 2,
        codec: PlanCodec::Binary,
        churn: ChurnScript::new().at(0, ChurnEvent::PlannerCrash { host: 0 }),
        ..Default::default()
    };
    let stats = assert_churn_equivalent(
        &planner, &dataset, gbs(16384), run, &serial, cfg, "last-planner",
    );
    assert_eq!(stats.churn.events_applied, 0);
    assert_eq!(stats.churn.events_ignored, 1);
    assert_eq!(stats.iterations, 2);
}

#[test]
fn planner_join_rebalances_bit_identically() {
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(317, 600);
    let run = RunConfig {
        max_iterations: Some(4),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 3,
            codec,
            // A second planner host (2 workers) joins at iteration 1 and
            // starts claiming from the shared window immediately.
            churn: ChurnScript::new().at(1, ChurnEvent::PlannerJoin { workers: 2 }),
            ..Default::default()
        };
        let label = format!("join/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs(16384), run, &serial, cfg, &label,
        );
        assert_eq!(stats.churn.planner_joins, 1, "{label}");
        // The roster grew: the joined host reports alongside the seed
        // host (whether it won any ticket is scheduling).
        assert_eq!(stats.planner_hosts.len(), 2, "{label}");
        assert_eq!(stats.planner_hosts[1].workers, 2, "{label}");
        let produced: usize = stats.planner_hosts.iter().map(|h| h.plans_produced).sum();
        assert_eq!(produced, 4, "{label}: all plans accounted");
    }
}

#[test]
fn executor_loss_replaces_replicas_bit_identically() {
    // dp=2 over two executor hosts; host 1 dies at iteration 1. Its
    // replica re-places onto host 0 (the store host), whose downlink is
    // local — subsequent iterations stop paying host 1's fetch wire.
    let planner = DynaPipePlanner::new(cost_model(2, 2), PlannerConfig::default());
    let dataset = Dataset::flanv2(331, 600);
    let run = RunConfig {
        max_iterations: Some(4),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(32768), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 2,
            executor_hosts: 2,
            plan_ahead: 3,
            codec,
            churn: ChurnScript::new().at(1, ChurnEvent::ExecutorLoss { host: 1 }),
            ..Default::default()
        };
        let label = format!("loss/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs(32768), run, &serial, cfg, &label,
        );
        assert_eq!(stats.churn.executor_losses, 1, "{label}");
        assert_eq!(stats.churn.replicas_moved, 1, "{label}");
        // Replica 1 executed on host 1 (iteration 0) and then on host 0
        // (after the loss): both hosts saw it.
        assert!(
            stats.executor_hosts[0].replicas.contains(&1),
            "{label}: replica 1 must re-place onto host 0, got {:?}",
            stats.executor_hosts[0].replicas
        );
        assert!(
            stats.executor_hosts[1].replicas.contains(&1),
            "{label}: host 1 ran replica 1 before dying"
        );
        // Host 1 fetched only the pre-loss iteration's blob; an
        // undisturbed twin fetches all four. (Loss at iteration 1 =
        // exactly one fetched blob, sized codec-dependently — compare
        // against the mean blob to stay codec-agnostic.)
        assert!(
            (stats.executor_hosts[1].bytes_fetched as f64)
                < 2.0 * stats.mean_blob_bytes,
            "{label}: dead host kept fetching: {} bytes",
            stats.executor_hosts[1].bytes_fetched
        );
    }
}

#[test]
fn losing_the_store_host_is_ignored_not_fatal() {
    let planner = DynaPipePlanner::new(cost_model(2, 2), PlannerConfig::default());
    let dataset = Dataset::flanv2(337, 500);
    let run = RunConfig {
        max_iterations: Some(2),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(32768), run);
    let cfg = ClusterConfig {
        planner_hosts: 1,
        workers_per_host: 1,
        executor_hosts: 2,
        plan_ahead: 2,
        codec: PlanCodec::Json,
        // Host 0 holds the store: losing it is fail-stop, not churn.
        // Losing host 1 twice: the second event hits a dead host.
        churn: ChurnScript::new()
            .at(0, ChurnEvent::ExecutorLoss { host: 0 })
            .at(0, ChurnEvent::ExecutorLoss { host: 1 })
            .at(1, ChurnEvent::ExecutorLoss { host: 1 }),
        ..Default::default()
    };
    let stats = assert_churn_equivalent(
        &planner, &dataset, gbs(32768), run, &serial, cfg, "store-host",
    );
    assert_eq!(stats.churn.events_applied, 1, "only the first host-1 loss lands");
    assert_eq!(stats.churn.events_ignored, 2);
}

#[test]
fn sharded_owner_loss_reowns_shards_and_refetches_in_flight_blobs() {
    // dp=3 over three sharded executor hosts; host 1 dies at iteration
    // 1. Exactly its shard (shard 1) re-owns onto a survivor, the
    // in-flight blob of iteration 1 — already pushed toward the dead
    // owner — is restored from the surviving peer, and none of it may
    // move a bit of behavior.
    let planner = DynaPipePlanner::new(cost_model(2, 3), PlannerConfig::default());
    let dataset = Dataset::flanv2(359, 900);
    let run = RunConfig {
        max_iterations: Some(4),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(49152), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 2,
            executor_hosts: 3,
            plan_ahead: 3,
            codec,
            placement: StorePlacement::Sharded,
            churn: ChurnScript::new().at(1, ChurnEvent::ExecutorLoss { host: 1 }),
            ..Default::default()
        };
        let label = format!("shard-loss/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs(49152), run, &serial, cfg, &label,
        );
        assert_eq!(stats.churn.executor_losses, 1, "{label}");
        assert_eq!(stats.churn.replicas_moved, 1, "{label}");
        // Only the dead owner's shard moved; survivors' shards stayed.
        assert_eq!(stats.churn.shards_moved, 1, "{label}");
        assert_eq!(stats.shards.len(), 3, "{label}: one shard per host");
        assert_eq!(stats.shards[0].owner, 0, "{label}: surviving shard 0 is stable");
        assert_eq!(stats.shards[2].owner, 2, "{label}: surviving shard 2 is stable");
        assert_ne!(stats.shards[1].owner, 1, "{label}: lost shard must re-own");
        // Iteration 1's blob was in flight to the dead owner: exactly
        // one restore from the surviving peer, sized like a blob.
        assert_eq!(stats.churn.blobs_refetched, 1, "{label}");
        assert!(
            stats.churn.refetch_bytes > 0
                && (stats.churn.refetch_bytes as f64) < 2.0 * stats.mean_blob_bytes,
            "{label}: one blob restored, got {} bytes",
            stats.churn.refetch_bytes
        );
        // The per-shard view agrees with the ledger.
        let refetched: u64 = stats.shards.iter().map(|s| s.refetched_blobs).sum();
        let refetch_bytes: u64 = stats.shards.iter().map(|s| s.refetch_bytes).sum();
        assert_eq!(refetched, stats.churn.blobs_refetched, "{label}");
        assert_eq!(refetch_bytes, stats.churn.refetch_bytes, "{label}");
        assert_eq!(stats.shards[1].refetched_blobs, 1, "{label}: the moved shard restored");
    }
}

#[test]
fn sharded_placement_survives_losing_host_zero() {
    // Under the single placement host 0 holds the whole store and its
    // loss is ignored as fail-stop; under the sharded placement host 0
    // owns just one shard and may die like anyone else — the guard this
    // PR lifts.
    let planner = DynaPipePlanner::new(cost_model(2, 2), PlannerConfig::default());
    let dataset = Dataset::flanv2(367, 600);
    let run = RunConfig {
        max_iterations: Some(3),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(32768), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    let cfg = ClusterConfig {
        planner_hosts: 1,
        workers_per_host: 1,
        executor_hosts: 2,
        plan_ahead: 2,
        codec: PlanCodec::Binary,
        placement: StorePlacement::Sharded,
        churn: ChurnScript::new().at(1, ChurnEvent::ExecutorLoss { host: 0 }),
        ..Default::default()
    };
    let stats = assert_churn_equivalent(
        &planner, &dataset, gbs(32768), run, &serial, cfg, "shard-host0",
    );
    assert_eq!(stats.churn.events_applied, 1, "host 0 loss must land under sharding");
    assert_eq!(stats.churn.events_ignored, 0);
    assert_eq!(stats.churn.executor_losses, 1);
    assert_eq!(stats.churn.shards_moved, 1, "host 0's shard re-owns onto host 1");
    assert_eq!(stats.shards[0].owner, 1);
    // Sole survivor: it already holds the replica, nothing to restore.
    assert_eq!(stats.churn.blobs_refetched, 0);
}

#[test]
fn stale_placement_snapshot_errors_instead_of_routing_to_dead_host() {
    // The regression behind the hard error: after host 1 dies, the
    // prefetcher's snapshot re-places both replicas onto host 0. If
    // that snapshot were ever truncated, the old fallback would compute
    // `replica % executor_hosts` — routing replica 1 straight back to
    // the dead host and silently accounting its time there. A short
    // snapshot must refuse instead.
    let full = vec![0, 0];
    assert_eq!(placed_host(&full, 0), Ok(0));
    assert_eq!(placed_host(&full, 1), Ok(0));
    let err = placed_host(&full[..1], 1).expect_err("short snapshot must hard-error");
    assert!(err.contains("replica 1"), "{err}");
}

#[test]
fn straggler_reissue_recovers_bit_identically() {
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(347, 1000);
    let run = RunConfig {
        // Enough iterations that the straggling host is guaranteed to
        // claim a ticket after its delay is armed (the arm races the
        // first claims, but not five of them).
        max_iterations: Some(5),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 2,
            codec,
            // Host 1's next claim sleeps 1.5 s before planning; the
            // executor's 60 ms deadline detects the stall and re-issues
            // the ticket to host 0. Both attempts eventually complete:
            // first wins, the duplicate blob is discarded at the store
            // door and the duplicate completion discarded as stale.
            churn: ChurnScript::new().at(0, ChurnEvent::Straggle {
                host: 1,
                delay_ms: 1500,
            }),
            reissue_deadline: Some(Duration::from_millis(60)),
            ..Default::default()
        };
        let label = format!("straggle/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs(16384), run, &serial, cfg, &label,
        );
        assert_eq!(stats.churn.straggles, 1, "{label}");
        assert!(
            stats.churn.deadline_expiries >= 1,
            "{label}: the 60ms deadline must expire under a 1.5s straggle"
        );
        assert!(
            stats.churn.tickets_reissued >= 1,
            "{label}: the stalled ticket must re-issue"
        );
        // Both attempts ran to completion: exactly one was accepted per
        // iteration, the rest discarded — never double-completed, never
        // silently overwritten.
        assert!(
            stats.churn.stale_completions >= 1,
            "{label}: the losing attempt's completion must be counted stale"
        );
        assert!(
            stats.churn.duplicate_blobs_discarded >= 1,
            "{label}: the losing attempt's blob must be discarded at the store"
        );
        assert_eq!(
            stats.store.discarded, stats.churn.duplicate_blobs_discarded,
            "{label}: store discards are exactly the counted duplicates"
        );
    }
}

#[test]
fn compound_churn_still_pins_behavior() {
    // Everything at once: a straggle, a crash of the straggling host, a
    // join to replace it, under a live re-issue deadline — the stack of
    // recoveries must still be invisible in the RunReport.
    let planner = DynaPipePlanner::new(cost_model(2, 1), PlannerConfig::default());
    let dataset = Dataset::flanv2(353, 700);
    let run = RunConfig {
        max_iterations: Some(5),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs(16384), run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 3,
            codec,
            churn: ChurnScript::new()
                .at(1, ChurnEvent::Straggle {
                    host: 1,
                    delay_ms: 800,
                })
                .at(2, ChurnEvent::PlannerCrash { host: 1 })
                .at(3, ChurnEvent::PlannerJoin { workers: 1 }),
            reissue_deadline: Some(Duration::from_millis(60)),
            ..Default::default()
        };
        let label = format!("compound/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs(16384), run, &serial, cfg, &label,
        );
        assert_eq!(stats.iterations, 5, "{label}");
        assert_eq!(stats.churn.events_applied, 3, "{label}");
        assert_eq!(
            (stats.churn.straggles, stats.churn.planner_crashes, stats.churn.planner_joins),
            (1, 1, 1),
            "{label}"
        );
    }
}

#[test]
fn failure_mid_epoch_during_rebalance_sweeps_speculative_blobs() {
    // The monster-sample fixture fails planning a few iterations in,
    // *while* churn is rebalancing the pool (a crash right before the
    // failing iteration and an executor loss at it). The run must stop
    // at exactly the serial failure, and teardown must still discard
    // every speculative blob — recovery machinery cannot leak.
    let planner = DynaPipePlanner::new(cost_model(2, 2), PlannerConfig::default());
    let mut dataset = Dataset::flanv2(109, 400);
    dataset.samples[130] = Sample {
        id: 130,
        task: 0,
        input_len: 2_000_000,
        target_len: 512,
    };
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 16384,
        max_seq_len: 4_000_000,
    };
    let run = RunConfig {
        max_iterations: Some(20),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs, run);
    assert!(serial.failure.is_some(), "fixture must fail mid-epoch");
    assert!(!serial.records.is_empty());
    let fail_at = serial.records.len();
    for codec in PlanCodec::ALL {
        let cfg = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 2,
            executor_hosts: 2,
            plan_ahead: 3,
            codec,
            churn: ChurnScript::new()
                .at(fail_at.saturating_sub(1), ChurnEvent::PlannerCrash { host: 0 })
                .at(fail_at, ChurnEvent::ExecutorLoss { host: 1 }),
            ..Default::default()
        };
        let label = format!("fail-rebalance/{}", codec.label());
        let stats = assert_churn_equivalent(
            &planner, &dataset, gbs, run, &serial, cfg, &label,
        );
        assert_eq!(
            stats.iterations,
            serial.records.len(),
            "{label}: must stop at the serial failure iteration"
        );
        assert!(stats.churn.events_applied >= 1, "{label}");
    }
}
