//! The trace ↔ counter reconciliation suite (PR 10): on a store-backed
//! **sharded** cluster run with live churn (a straggler under a
//! re-issue deadline, then an executor-host loss with an in-flight blob
//! restore), the span trace must reconcile **exactly** with every
//! counter ledger the run reports — byte sums as integers, span counts
//! as integers, exposed-µs ledgers bitwise — against [`ClusterReport`],
//! its per-host stats and its [`ShardStats`], not just the embedded
//! `TraceMeta` (which `Trace::reconcile` already audits).
//!
//! The invariant table lives in `TRACING.md`; this suite is its
//! executable form on a scenario that exercises every span kind at
//! once: re-issues, duplicate discards, teardown sweeps, restore hops,
//! cross-host fetches and per-host exposure.

use dynapipe_cluster::{
    run_training_cluster_traced, ChurnEvent, ChurnScript, ClusterConfig, StorePlacement,
};
use dynapipe_core::{run_training, DynaPipePlanner, PlanCodec, PlannerConfig, RunConfig};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use dynapipe_trace::{SpanKind, TraceSink};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn churned_sharded_run_reconciles_span_for_span() {
    let planner = DynaPipePlanner::new(
        Arc::new(CostModel::build(
            HardwareModel::a100_cluster(),
            ModelConfig::gpt_3_35b(),
            ParallelConfig::new(3, 1, 2),
            &ProfileOptions::coarse(),
        )),
        PlannerConfig::default(),
    );
    let dataset = Dataset::flanv2(401, 900);
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 49152,
        max_seq_len: 2048,
    };
    let run = RunConfig {
        max_iterations: Some(5),
        ..Default::default()
    };
    let serial = run_training(&planner, &dataset, gbs, run);
    assert!(serial.feasible(), "{:?}", serial.failure);
    for codec in PlanCodec::ALL {
        let label = codec.label();
        let cfg = ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 1,
            executor_hosts: 3,
            plan_ahead: 3,
            codec,
            placement: StorePlacement::Sharded,
            // A straggle long enough for the 60 ms deadline to re-issue,
            // then a shard-owner loss whose in-flight blob must be
            // restored from a surviving peer.
            churn: ChurnScript::new()
                .at(0, ChurnEvent::Straggle {
                    host: 1,
                    delay_ms: 1500,
                })
                .at(2, ChurnEvent::ExecutorLoss { host: 1 }),
            reissue_deadline: Some(Duration::from_millis(60)),
            ..Default::default()
        };
        let sink = TraceSink::bounded(1 << 20);
        let (report, stats) = run_training_cluster_traced(&planner, &dataset, gbs, run, cfg, &sink);
        serial
            .behavior_eq(&report)
            .unwrap_or_else(|e| panic!("{label}: diverged from serial: {e}"));
        assert!(stats.churn.tickets_reissued >= 1, "{label}: scenario must re-issue");
        assert!(stats.churn.executor_losses == 1, "{label}");

        let mut trace = sink.finish();
        trace.meta = stats.trace_meta(&format!("reconciliation/{label}"));
        assert_eq!(trace.counters.spans_dropped, 0, "{label}: ring must not truncate");
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{label}: validation: {e}"));
        trace
            .reconcile()
            .unwrap_or_else(|e| panic!("{label}: meta reconciliation: {e}"));

        // --- Wire bytes, against the per-host / per-shard ledgers ------
        let host_pushed: u64 = stats.planner_hosts.iter().map(|h| h.bytes_pushed).sum();
        assert_eq!(trace.bytes_of(SpanKind::LinkPush), host_pushed, "{label}: push bytes");
        let host_fetched: u64 = stats.executor_hosts.iter().map(|h| h.bytes_fetched).sum();
        assert_eq!(trace.bytes_of(SpanKind::LinkFetch), host_fetched, "{label}: fetch bytes");
        // The wire-byte rule end-to-end: fetch spans exist only for
        // remote copies, which on the flat codec are exactly the bytes
        // executed zero-copy.
        if codec == PlanCodec::Flat {
            assert_eq!(trace.bytes_of(SpanKind::LinkFetch), stats.flat_wire_bytes, "{label}");
        }
        assert_eq!(
            trace.bytes_of(SpanKind::LinkRestore),
            stats.churn.refetch_bytes,
            "{label}: restore bytes"
        );
        assert_eq!(
            trace.of_kind(SpanKind::LinkRestore).count() as u64,
            stats.churn.blobs_refetched,
            "{label}: one restore span per refetched blob"
        );
        // Per-executor-host fetch attribution (fetch spans carry the
        // fetching host in `lane`).
        for (h, eh) in stats.executor_hosts.iter().enumerate() {
            let got: u64 = trace
                .of_kind(SpanKind::LinkFetch)
                .filter(|s| s.lane == h as i64)
                .map(|s| s.bytes)
                .sum();
            assert_eq!(got, eh.bytes_fetched, "{label}: host {h} fetch bytes");
        }

        // --- Store traffic, per shard -----------------------------------
        assert_eq!(
            trace.of_kind(SpanKind::StorePush).count() as u64,
            stats.store.pushes,
            "{label}: one push span per store push"
        );
        assert_eq!(
            trace.of_kind(SpanKind::StoreTake).count() as u64,
            stats.store.takes,
            "{label}: one take span per store take"
        );
        assert_eq!(
            trace.of_kind(SpanKind::StoreDiscard).count() as u64,
            stats.store.discarded,
            "{label}: one discard span per duplicate or swept blob"
        );
        // `ShardStats::bytes_pushed` ledgers only the blobs that were
        // taken and executed; a re-issue duplicate crosses the store
        // door and is discarded there, so its bytes appear as a
        // matching StorePush + StoreDiscard pair on the same shard.
        for (s, shard) in stats.shards.iter().enumerate() {
            let pushed: u64 = trace
                .of_kind(SpanKind::StorePush)
                .filter(|p| p.lane == s as i64)
                .map(|p| p.bytes)
                .sum();
            let door_discarded: u64 = trace
                .of_kind(SpanKind::StoreDiscard)
                .filter(|p| p.lane == s as i64)
                .map(|p| p.bytes)
                .sum();
            assert_eq!(
                pushed - door_discarded,
                shard.bytes_pushed,
                "{label}: shard {s} pushed bytes"
            );
        }

        // --- Ticket lifecycle vs the queue's ledger ---------------------
        assert_eq!(
            trace.of_kind(SpanKind::TicketReissue).count() as u64,
            stats.churn.tickets_reissued,
            "{label}: one span per re-issue"
        );
        // Every committed claim plans and pushes exactly once; the
        // completion spans split into accepted (bytes = 1, one per
        // executed iteration) and stale (bytes = 0, counted by the
        // churn ledger).
        assert_eq!(
            trace.of_kind(SpanKind::TicketClaim).count() as u64,
            stats.store.pushes,
            "{label}: claims committed == blobs pushed"
        );
        let accepted = trace
            .of_kind(SpanKind::TicketComplete)
            .filter(|s| s.bytes == 1)
            .count();
        let stale = trace
            .of_kind(SpanKind::TicketComplete)
            .filter(|s| s.bytes == 0)
            .count() as u64;
        assert_eq!(accepted, stats.iterations, "{label}: one accepted completion per iteration");
        assert_eq!(stale, stats.churn.stale_completions, "{label}: stale completions");
        assert_eq!(
            trace.of_kind(SpanKind::ChurnAction).count(),
            stats.churn.events_applied,
            "{label}: one action span per applied event"
        );

        // --- Exposure ledgers, bitwise ----------------------------------
        assert_eq!(
            trace.ledger_us(SpanKind::ExposedPlanning).to_bits(),
            stats.exposed_us.to_bits(),
            "{label}: exposed ledger must be the same accumulation"
        );
        for (h, eh) in stats.executor_hosts.iter().enumerate() {
            let got = trace
                .of_kind(SpanKind::ExposedWait)
                .filter(|s| s.lane == h as i64)
                .map(|s| s.wait_us)
                .sum::<f64>()
                + 0.0;
            assert_eq!(
                got.to_bits(),
                eh.exposed_us.to_bits(),
                "{label}: host {h} exposed ledger ({got} vs {})",
                eh.exposed_us
            );
        }

        // --- The Sim timeline ends exactly at the simulated total -------
        let sim_end = trace
            .of_kind(SpanKind::IterSync)
            .last()
            .expect("executed iterations record sync spans")
            .end_us;
        assert_eq!(
            sim_end.to_bits(),
            stats.exec_sim_us.to_bits(),
            "{label}: Sim timeline end {sim_end} vs exec_sim_us {}",
            stats.exec_sim_us
        );
    }
}
