//! Fig. 5: throughput of token-based and fixed-size micro-batching across
//! their parameter sweeps, normalized to the DP solution.
//!
//! Reproduces the motivation that the baselines' knobs matter a lot, OOM at
//! the large end, and even their best settings lose to the DP split.

use dynapipe_bench::{probe_minibatches, run_point, write_json, BenchOpts, Point};
use dynapipe_core::{BaselineKind, BaselinePlanner, DynaPipePlanner, PlannerConfig};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();
    for (name, model, parallel, msls) in [
        (
            "GPT",
            ModelConfig::gpt_6_7b(),
            ParallelConfig::new(2, 2, 2),
            vec![512usize, 2048, 8192],
        ),
        (
            "T5",
            ModelConfig::t5_11b(),
            ParallelConfig::new(1, 4, 2),
            vec![512, 2048, 4096],
        ),
    ] {
        let _ = probe_minibatches; // (grid search not needed: fixed parallelism)
        println!("=== Fig. 5 ({name}, {parallel}) ===");
        for &msl in &msls {
            let point = Point {
                model,
                num_gpus: parallel.num_gpus(),
                max_seq_len: msl,
                gbs_tokens: 65536,
            };
            let cm = Arc::new(CostModel::build(
                hw.clone(),
                model,
                parallel,
                &ProfileOptions::default(),
            ));
            if !cm.is_feasible() {
                println!("  msl {msl}: deployment infeasible");
                continue;
            }
            // DP solution (the normalizer).
            let dyna = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());
            let dp_report = run_point(&dyna, &dataset, &point, &opts);
            let Some(dp_tps) = dp_report.feasible().then(|| dp_report.throughput()) else {
                println!("  msl {msl}: DP solution infeasible");
                continue;
            };
            // Token-based sweep.
            print!("  msl {msl:>5} token-based:");
            for budget in [1024usize, 2048, 4096, 8192, 16384, 32768] {
                let p = BaselinePlanner::new(
                    cm.clone(),
                    BaselineKind::TokenBased {
                        token_budget: budget,
                        ordering: dynapipe_batcher::OrderingStrategy::Sort,
                    },
                );
                let r = run_point(&p, &dataset, &point, &opts);
                let norm = r.feasible().then(|| r.throughput() / dp_tps);
                print!(
                    " {budget}:{}",
                    norm.map(|v| format!("{v:.2}")).unwrap_or("OOM".into())
                );
                out.push(serde_json::json!({
                    "model": name, "max_seq_len": msl, "method": "token",
                    "param": budget, "normalized": norm,
                }));
            }
            println!();
            // Fixed micro-batch-size sweep.
            print!("  msl {msl:>5} fixed-size :");
            for mbs in [1usize, 2, 4, 8, 16, 32, 64] {
                let p = BaselinePlanner::new(cm.clone(), BaselineKind::FixedSize { mb_size: mbs });
                let r = run_point(&p, &dataset, &point, &opts);
                let norm = r.feasible().then(|| r.throughput() / dp_tps);
                print!(
                    " {mbs}:{}",
                    norm.map(|v| format!("{v:.2}")).unwrap_or("OOM".into())
                );
                out.push(serde_json::json!({
                    "model": name, "max_seq_len": msl, "method": "fixed",
                    "param": mbs, "normalized": norm,
                }));
            }
            println!("   (all normalized to DP solution = 1.00)");
        }
        println!();
    }
    println!(
        "Shape check (paper Fig. 5): every sweep stays at or below 1.0; fixed-size\n\
         OOMs at large sizes under long max lengths; token-based peaks below the\n\
         DP solution without needing its parameter search."
    );
    write_json("fig05_microbatching_sweep", &out);
}
