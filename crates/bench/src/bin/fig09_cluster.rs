//! Fig. 9 deployed: the cluster runtime on simulated multi-host
//! topologies, with the wire codec A/B.
//!
//! Runs the fig17 workload (65k-token mini-batches, 8 GPUs) at dp=2 —
//! GPT 6.7B (dp2·pp4) and T5 11B (dp2·tp4) — through the serial driver
//! and a topology × codec matrix of
//! [`dynapipe_cluster::run_training_cluster`]:
//!
//! * `1p×1w→1e` over free local links — the degenerate single-host
//!   deployment, the control arm;
//! * `2p×1w→2e` and `2p×2w→2e` over the a100 inter-node link — planner
//!   pool on separate hosts, replicas split across executor hosts, every
//!   plan blob paying α-β wire cost into and out of the store;
//!
//! each with all three [`PlanCodec`]s, so the artifact shows what the
//! binary codec buys on a real multi-host wire — and what the zero-copy
//! flat codec buys on top of it (executors run engines straight over
//! the downlink bytes; decode is validate-and-wrap).
//!
//! A **churn arm** (PR 6) then replays the `2p×1w→2e` deployment per
//! codec under a scripted worst-of-every-class [`ChurnScript`] — a
//! straggler, a planner crash, a planner join, and an executor-host
//! loss — with a re-issue deadline armed, and reports the recovery
//! counters ([`dynapipe_cluster::ChurnStats`]) plus `churn_overhead_us`
//! against the undisturbed arm of the same topology and codec. Events
//! are keyed at `min(k, iters-1)` so a capped 1-iteration smoke run
//! still fires every one of them.
//!
//! A **datacenter arm** (PR 9) then sweeps executor-host counts up to
//! O(100) — GPT 3.35B at `dp = host count`, pp=2 — over a
//! rack-structured [`Fabric`] (racks of 8, 4× oversubscribed cross-rack
//! bandwidth), crossing both [`StorePlacement`]s with every codec, plus
//! a churned cell per placement that loses a store-shard owner mid-run
//! (host 0 itself under the sharded placement — only the single
//! placement protects the store host). The sweep is the existence proof
//! for sharding: under the single placement the store host's links
//! concentrate the entire plan stream; sharding must spread it.
//!
//! Emits `BENCH_cluster.json` with per-topology cluster walls, overlap
//! ratios, per-host breakdowns, per-codec bytes / decode time, the
//! churn arms, and the datacenter sweep, and **exits nonzero** if
//!
//! 1. any topology's `RunReport` diverges from the serial driver
//!    (`behavior_eq` — the golden invariant), **including the churned
//!    arms**, or
//! 2. the binary codec's mean blob exceeds **half** the JSON blob, or
//! 3. the binary codec does not decode faster than JSON on a
//!    **controlled microbenchmark** (one real lowered plan blob per
//!    model, decoded repeatedly on an otherwise idle process — the
//!    in-run decode walls are also reported, but on a contended 1-CPU
//!    container they measure the scheduler, not the codec), or
//! 4. recovery cost is unbounded: a churned arm's wall exceeds
//!    `3 × undisturbed + 5 s` (the slack covers the injected straggle
//!    sleep and scheduler noise on a small container), or
//! 5. the flat codec stops being zero-copy: its controlled decode
//!    (validate-and-wrap, `FlatPlanRef::new`) must stay under **0.2×**
//!    the binary codec's tree rebuild, and its fixed-width arena must
//!    stay within **1.25×** the binary blob bytes, or
//! 6. any datacenter cell — every host count × codec × placement ×
//!    fabric combination, churned cells included — diverges from its
//!    serial oracle, or
//! 7. sharding stops spreading the plan stream: at the **largest**
//!    topology, the sharded store's busiest single link must carry
//!    **strictly fewer** bytes than the single store host serves over
//!    its downlink (`Σ bytes_fetched` across the other executor hosts).

use dynapipe_bench::{write_json, write_root_artifact, BenchOpts};
use dynapipe_cluster::{
    run_training_cluster, run_training_cluster_traced, ChurnEvent, ChurnScript, ClusterConfig,
    ClusterReport, StorePlacement,
};
use dynapipe_core::{
    compile_replica, run_training, DynaPipePlanner, PlanCodec, PlannerConfig, RunConfig,
    StoredLowered, StoredOutcome, StoredPlan,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig, GlobalBatchIter};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use dynapipe_sim::Fabric;
use dynapipe_trace::{chrome::to_chrome_trace, sim_eq, Trace, TraceSink};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Arm {
    stats: ClusterReport,
    divergence: Option<String>,
}

struct ChurnArm {
    stats: ClusterReport,
    divergence: Option<String>,
    undisturbed_wall_us: f64,
    churn_overhead_us: f64,
}

/// Controlled per-model codec measurement: one real lowered plan blob,
/// decoded `DECODE_REPS` times per codec with nothing else running.
/// "Decode" for the tree codecs is `StoredPlan::decode` (a full owned
/// tree rebuild); for Flat it is `FlatPlanRef::new` — header/record
/// validation plus wrapping the `Arc<[u8]>`, after which engines run
/// straight over the wire bytes. That asymmetry is the point of the
/// comparison: it is exactly what the cluster prefetcher pays per blob.
struct CodecBench {
    json_bytes: usize,
    binary_bytes: usize,
    flat_bytes: usize,
    json_decode_us: f64,
    binary_decode_us: f64,
    flat_decode_us: f64,
}

const DECODE_REPS: usize = 5;

fn codec_microbench(
    planner: &DynaPipePlanner,
    dataset: &Dataset,
    gbs: GlobalBatchConfig,
) -> CodecBench {
    let minibatch = GlobalBatchIter::new(dataset, gbs)
        .next()
        .expect("workload has at least one mini-batch");
    let plan = planner
        .plan_iteration(&minibatch)
        .expect("fig09 workload plans cleanly");
    let programs = plan
        .replicas
        .iter()
        .map(|r| compile_replica(&planner.cm, &r.plan))
        .collect();
    let stored = StoredPlan {
        iteration: 0,
        outcome: StoredOutcome::Plan(StoredLowered { plan, programs }),
    };
    // Min of several timed passes: a single scheduler preemption inside
    // one pass must not flip the codec comparison (and fail CI) on a
    // busy container.
    let time_decode = |codec: PlanCodec| -> (usize, f64) {
        let blob = stored.encode(codec);
        let mut best = f64::INFINITY;
        for _pass in 0..3 {
            let t = Instant::now();
            for _ in 0..DECODE_REPS {
                let back = StoredPlan::decode(codec, &blob).expect("own blob decodes");
                std::hint::black_box(&back);
            }
            best = best.min(t.elapsed().as_secs_f64() * 1e6);
        }
        (blob.len(), best)
    };
    let (json_bytes, json_decode_us) = time_decode(PlanCodec::Json);
    let (binary_bytes, binary_decode_us) = time_decode(PlanCodec::Binary);
    // Flat decode = validate + wrap the shared bytes (no tree build):
    // the blob is materialized once outside the timed region, and each
    // rep pays only the `FlatPlanRef::new` validation pass over a cheap
    // `Arc` clone — the same cost the prefetcher pays per fetched blob.
    let flat_blob: Arc<[u8]> = Arc::from(stored.encode(PlanCodec::Flat).into_boxed_slice());
    let flat_bytes = flat_blob.len();
    let mut flat_decode_us = f64::INFINITY;
    for _pass in 0..3 {
        let t = Instant::now();
        for _ in 0..DECODE_REPS {
            let view = dynapipe_core::FlatPlanRef::new(flat_blob.clone())
                .expect("own flat blob validates");
            std::hint::black_box(&view);
        }
        flat_decode_us = flat_decode_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    CodecBench {
        json_bytes,
        binary_bytes,
        flat_bytes,
        json_decode_us,
        binary_decode_us,
        flat_decode_us,
    }
}

struct ModelOutcome {
    name: &'static str,
    iterations: usize,
    serial_wall_us: f64,
    arms: Vec<Arm>,
    churn_arms: Vec<ChurnArm>,
    codec_bench: CodecBench,
}

/// The churn arm's deployment: the `2p×1w→2e` matrix topology with one
/// scripted event of every class and a re-issue deadline armed. Events
/// are keyed at `min(k, iters-1)` so a capped 1-iteration smoke run
/// (`run_all --smoke`) still fires all of them at iteration 0.
fn churn_topology(iters: usize, codec: PlanCodec) -> ClusterConfig {
    let at = |k: usize| k.min(iters.saturating_sub(1));
    ClusterConfig {
        planner_hosts: 2,
        workers_per_host: 1,
        executor_hosts: 2,
        plan_ahead: 4,
        codec,
        churn: ChurnScript::new()
            .at(
                at(1),
                ChurnEvent::Straggle {
                    host: 1,
                    delay_ms: 1200,
                },
            )
            .at(at(2), ChurnEvent::PlannerCrash { host: 1 })
            .at(at(2), ChurnEvent::PlannerJoin { workers: 1 })
            .at(at(3), ChurnEvent::ExecutorLoss { host: 1 }),
        reissue_deadline: Some(Duration::from_millis(500)),
        ..Default::default()
    }
}

fn topologies() -> Vec<ClusterConfig> {
    let mut out = Vec::new();
    for codec in PlanCodec::ALL {
        out.push(ClusterConfig {
            planner_hosts: 1,
            workers_per_host: 1,
            executor_hosts: 1,
            plan_ahead: 4,
            codec,
            fabric: Fabric::free(),
            ..Default::default()
        });
        out.push(ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 1,
            executor_hosts: 2,
            plan_ahead: 4,
            codec,
            ..Default::default()
        });
        out.push(ClusterConfig {
            planner_hosts: 2,
            workers_per_host: 2,
            executor_hosts: 2,
            plan_ahead: 4,
            codec,
            ..Default::default()
        });
    }
    out
}

fn run_model(
    name: &'static str,
    model: ModelConfig,
    parallel: ParallelConfig,
    dataset: &Dataset,
    iters: usize,
) -> ModelOutcome {
    let cm = Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        model,
        parallel,
        &ProfileOptions::default(),
    ));
    let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 65536,
        max_seq_len: 4096,
    };
    let run = RunConfig {
        max_iterations: Some(iters),
        ..Default::default()
    };
    let serial = run_training(&planner, dataset, gbs, run);
    let serial_wall_us: f64 = serial
        .records
        .iter()
        .map(|r| r.planning_time_us + r.measured_time)
        .sum();
    let arms: Vec<Arm> = topologies()
        .into_iter()
        .map(|cluster| {
            let (report, stats) = run_training_cluster(&planner, dataset, gbs, run, cluster);
            Arm {
                divergence: serial.behavior_eq(&report).err(),
                stats,
            }
        })
        .collect();
    let churn_arms = PlanCodec::ALL
        .into_iter()
        .map(|codec| {
            let cluster = churn_topology(iters, codec);
            let label = cluster.label();
            let (report, stats) = run_training_cluster(&planner, dataset, gbs, run, cluster);
            // The undisturbed baseline is the matrix arm with the same
            // topology and codec, measured moments earlier in this run.
            let undisturbed_wall_us = arms
                .iter()
                .find(|a| a.stats.topology == label && a.stats.codec == stats.codec)
                .map(|a| a.stats.cluster_wall_us)
                .unwrap_or(serial_wall_us);
            ChurnArm {
                divergence: serial.behavior_eq(&report).err(),
                churn_overhead_us: stats.cluster_wall_us - undisturbed_wall_us,
                undisturbed_wall_us,
                stats,
            }
        })
        .collect();
    let codec_bench = codec_microbench(&planner, dataset, gbs);
    ModelOutcome {
        name,
        iterations: serial.records.len(),
        serial_wall_us,
        arms,
        churn_arms,
        codec_bench,
    }
}

/// One cell of the datacenter sweep: a placement × codec deployment at
/// one executor-host count over the rack-structured fabric, optionally
/// with a scripted shard-owner loss.
struct DatacenterCell {
    stats: ClusterReport,
    divergence: Option<String>,
    churned: bool,
}

/// The datacenter sweep at one executor-host count, with its own serial
/// oracle (the workload changes with `dp = host count`).
struct DatacenterPoint {
    hosts: usize,
    iterations: usize,
    serial_feasible: bool,
    serial_wall_us: f64,
    cells: Vec<DatacenterCell>,
}

const DC_HOSTS_PER_RACK: usize = 8;
const DC_OVERSUBSCRIPTION: f64 = 4.0;

/// Executor-host counts for the datacenter sweep — O(100) hosts at the
/// top end. `run_all --smoke` caps the sweep to one toy size; it must
/// stay ≥ 3 hosts so the fan-out gate (sharded busiest link strictly
/// below the single store host's downlink) is still meaningful.
fn datacenter_host_counts(opts: &BenchOpts) -> Vec<usize> {
    if opts.smoke {
        vec![3]
    } else {
        vec![8, 32, 96]
    }
}

fn run_datacenter(dataset: &Dataset, opts: &BenchOpts) -> Vec<DatacenterPoint> {
    let hw = HardwareModel::a100_cluster();
    let iters = opts.capped(3, 1);
    datacenter_host_counts(opts)
        .into_iter()
        .map(|hosts| {
            // The runtime clamps executor hosts to the data-parallel
            // degree, so the sweep sets dp = host count (pp=2 keeps the
            // per-host model small). The coarse profile is enough: this
            // arm measures the fabric, not profile fidelity.
            let cm = Arc::new(CostModel::build(
                hw.clone(),
                ModelConfig::gpt_3_35b(),
                ParallelConfig::new(hosts, 1, 2),
                &ProfileOptions::coarse(),
            ));
            let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
            let gbs = GlobalBatchConfig {
                tokens_per_batch: (hosts * 1024).max(8192),
                max_seq_len: 1024,
            };
            let run = RunConfig {
                max_iterations: Some(iters),
                ..Default::default()
            };
            let serial = run_training(&planner, dataset, gbs, run);
            let fabric =
                ClusterConfig::datacenter_fabric(&hw, DC_HOSTS_PER_RACK, DC_OVERSUBSCRIPTION);
            let mut cells = Vec::new();
            for placement in [StorePlacement::Single, StorePlacement::Sharded] {
                for codec in PlanCodec::ALL {
                    let cfg = ClusterConfig {
                        planner_hosts: 2,
                        workers_per_host: 1,
                        executor_hosts: hosts,
                        plan_ahead: 4,
                        codec,
                        placement,
                        fabric: fabric.clone(),
                        ..Default::default()
                    };
                    let (report, stats) = run_training_cluster(&planner, dataset, gbs, run, cfg);
                    cells.push(DatacenterCell {
                        divergence: serial.behavior_eq(&report).err(),
                        stats,
                        churned: false,
                    });
                }
                // The churned cell loses a store-shard owner mid-run —
                // host 0 itself under the sharded placement (only the
                // single placement protects the store host; host 1
                // there). Recovery must stay behavior-identical: the
                // survivors re-own the dead host's shards and re-fetch
                // its in-flight blobs from a surviving peer.
                let lost = match placement {
                    StorePlacement::Sharded => 0,
                    StorePlacement::Single => 1,
                };
                let cfg = ClusterConfig {
                    planner_hosts: 2,
                    workers_per_host: 1,
                    executor_hosts: hosts,
                    plan_ahead: 4,
                    codec: PlanCodec::Binary,
                    placement,
                    fabric: fabric.clone(),
                    churn: ChurnScript::new().at(
                        1usize.min(iters.saturating_sub(1)),
                        ChurnEvent::ExecutorLoss { host: lost },
                    ),
                    ..Default::default()
                };
                let (report, stats) = run_training_cluster(&planner, dataset, gbs, run, cfg);
                cells.push(DatacenterCell {
                    divergence: serial.behavior_eq(&report).err(),
                    stats,
                    churned: true,
                });
            }
            DatacenterPoint {
                hosts,
                iterations: serial.records.len(),
                serial_feasible: serial.feasible(),
                serial_wall_us: serial
                    .records
                    .iter()
                    .map(|r| r.planning_time_us + r.measured_time)
                    .sum(),
                cells,
            }
        })
        .collect()
}

/// Per-host detail kept per datacenter cell in `BENCH_cluster.json`.
/// The O(100)-host sweep used to serialize every `ExecutorHostStats`
/// and `ShardStats` of every cell (~28k lines of artifact); the gates
/// only need per-cell totals, so the artifact now carries summaries
/// plus the first few hosts as a sample.
const DC_HOST_JSON_CAP: usize = 8;

/// One datacenter cell as artifact JSON: every gated quantity in full
/// (placement, codec, churn flag, wall, busiest link, fetched-byte
/// total, divergence), per-cell rollups, and per-host arrays capped at
/// [`DC_HOST_JSON_CAP`] entries with an explicit `omitted` count.
fn datacenter_cell_json(c: &DatacenterCell) -> serde_json::Value {
    let s = &c.stats;
    let fetched: u64 = s.executor_hosts.iter().map(|h| h.bytes_fetched).sum();
    let pushed: u64 = s.planner_hosts.iter().map(|h| h.bytes_pushed).sum();
    let cap_array = |n: usize, full: serde_json::Value| -> (serde_json::Value, usize) {
        match full {
            serde_json::Value::Array(mut v) => {
                let omitted = v.len().saturating_sub(n);
                v.truncate(n);
                (serde_json::Value::Array(v), omitted)
            }
            other => (other, 0),
        }
    };
    let (executor_hosts, executors_omitted) = cap_array(
        DC_HOST_JSON_CAP,
        serde_json::to_value(&s.executor_hosts),
    );
    let (shards, shards_omitted) = cap_array(DC_HOST_JSON_CAP, serde_json::to_value(&s.shards));
    serde_json::Value::Object(vec![
        ("topology".to_string(), serde_json::json!(s.topology)),
        ("placement".to_string(), serde_json::json!(s.placement)),
        ("codec".to_string(), serde_json::json!(s.codec)),
        ("fabric".to_string(), serde_json::json!(s.fabric)),
        ("churned".to_string(), serde_json::json!(c.churned)),
        ("iterations".to_string(), serde_json::json!(s.iterations)),
        (
            "cluster_wall_us".to_string(),
            serde_json::json!(s.cluster_wall_us),
        ),
        (
            "serial_wall_us".to_string(),
            serde_json::json!(s.serial_wall_us),
        ),
        ("exec_sim_us".to_string(), serde_json::json!(s.exec_sim_us)),
        ("exposed_us".to_string(), serde_json::json!(s.exposed_us)),
        (
            "overlap_ratio".to_string(),
            serde_json::json!(s.overlap_ratio),
        ),
        ("wire_bytes".to_string(), serde_json::json!(s.wire_bytes)),
        (
            "flat_wire_bytes".to_string(),
            serde_json::json!(s.flat_wire_bytes),
        ),
        (
            "max_link_bytes".to_string(),
            serde_json::json!(s.max_link_bytes),
        ),
        (
            "total_wire_us".to_string(),
            serde_json::json!(s.total_wire_us),
        ),
        (
            "mean_blob_bytes".to_string(),
            serde_json::json!(s.mean_blob_bytes),
        ),
        ("bytes_fetched_total".to_string(), serde_json::json!(fetched)),
        ("bytes_pushed_total".to_string(), serde_json::json!(pushed)),
        // Store scalars only: `per_shard` scales with host count and
        // duplicates the capped `shards` sample below.
        (
            "store".to_string(),
            serde_json::Value::Object(vec![
                ("pushes".to_string(), serde_json::json!(s.store.pushes)),
                ("takes".to_string(), serde_json::json!(s.store.takes)),
                ("discarded".to_string(), serde_json::json!(s.store.discarded)),
                (
                    "peak_occupancy".to_string(),
                    serde_json::json!(s.store.peak_occupancy),
                ),
                ("peak_bytes".to_string(), serde_json::json!(s.store.peak_bytes)),
            ]),
        ),
        ("churn".to_string(), serde_json::to_value(&s.churn)),
        ("planner_hosts".to_string(), serde_json::to_value(&s.planner_hosts)),
        ("executor_hosts".to_string(), executor_hosts),
        (
            "executor_hosts_omitted".to_string(),
            serde_json::json!(executors_omitted),
        ),
        ("shards".to_string(), shards),
        ("shards_omitted".to_string(), serde_json::json!(shards_omitted)),
        (
            "report_divergence".to_string(),
            serde_json::json!(c.divergence.clone().unwrap_or_default()),
        ),
    ])
}

/// Span capacity for the trace arm's bounded ring: ample for the small
/// deployment (a dropped span fails reconciliation by design).
const TRACE_CAP: usize = 65536;

/// The **trace arm** (PR 10): the unified span recorder on a small
/// sharded deployment, held to the determinism contract. Every cell —
/// codec × placement, a churned cell per placement, and a rerun of the
/// first cell — must (a) stay behavior-identical to the serial oracle,
/// (b) produce a structurally valid trace whose payload totals
/// reconcile **exactly** against the run's own counters
/// (`Trace::reconcile`: byte sums, span counts, bitwise exposed-µs
/// ledgers), and (c) produce the **bit-identical Sim-domain span
/// sequence** as every other cell (`sim_eq`) — the simulated timeline
/// is behavior, not stats, so codec, placement, churn and rerun must
/// not move it. The richest cell (sharded + shard-owner loss) is
/// exported to `results/TRACE_cluster.json` plus a Chrome trace-event
/// rendering; `run_all --smoke` round-trips the export through
/// `trace_report`, which recomputes the critical path from the spans.
fn run_trace_arm(dataset: &Dataset, opts: &BenchOpts) -> (Vec<String>, Option<Trace>) {
    let hosts = 3usize;
    let iters = opts.capped(3, 1);
    let cm = Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_3_35b(),
        ParallelConfig::new(hosts, 1, 2),
        &ProfileOptions::coarse(),
    ));
    let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 8192,
        max_seq_len: 1024,
    };
    // Engine traces on: the sim timeline carries per-op spans, not just
    // iteration extents. The serial oracle runs the same config.
    let run = RunConfig {
        max_iterations: Some(iters),
        record_trace: true,
        ..Default::default()
    };
    let serial = run_training(&planner, dataset, gbs, run);

    let base = |codec: PlanCodec, placement: StorePlacement| ClusterConfig {
        planner_hosts: 2,
        workers_per_host: 1,
        executor_hosts: hosts,
        plan_ahead: 4,
        codec,
        placement,
        ..Default::default()
    };
    let mut cells: Vec<(String, ClusterConfig)> = Vec::new();
    for placement in [StorePlacement::Single, StorePlacement::Sharded] {
        let pl = match placement {
            StorePlacement::Single => "single",
            StorePlacement::Sharded => "sharded",
        };
        for codec in PlanCodec::ALL {
            cells.push((format!("{pl}/{}", codec.label()), base(codec, placement)));
        }
        // The churned cell loses a store owner mid-run (host 0 itself
        // under the sharded placement), so the export carries churn,
        // re-placement and restore-hop spans.
        let lost = match placement {
            StorePlacement::Sharded => 0,
            StorePlacement::Single => 1,
        };
        let mut cfg = base(PlanCodec::Binary, placement);
        cfg.churn = ChurnScript::new().at(
            1usize.min(iters.saturating_sub(1)),
            ChurnEvent::ExecutorLoss { host: lost },
        );
        cells.push((format!("{pl}/binary+loss"), cfg));
    }
    // Rerun of the first cell: bit-identity across reruns, not just
    // across configurations.
    let rerun = cells[0].1.clone();
    cells.push(("rerun/single/json".to_string(), rerun));

    let mut failures = Vec::new();
    let mut pinned: Option<Trace> = None;
    let mut export: Option<Trace> = None;
    println!("\n  trace arm — {hosts} executor hosts, {iters} iteration(s), cap {TRACE_CAP} spans");
    println!(
        "  {:>20} | {:>7} {:>10} | {:>9} {:>9} {:>7}",
        "cell", "spans", "sim spans", "validate", "reconcile", "sim_eq"
    );
    for (label, cfg) in cells {
        let sink = TraceSink::bounded(TRACE_CAP);
        let (report, stats) = run_training_cluster_traced(&planner, dataset, gbs, run, cfg, &sink);
        if let Err(d) = serial.behavior_eq(&report) {
            failures.push(format!("trace arm {label}: diverged from serial: {d}"));
        }
        let mut trace = sink.finish();
        trace.meta = stats.trace_meta(&format!("fig09 trace arm {label}"));
        let validated = trace.validate();
        let reconciled = trace.reconcile();
        let pinned_eq = match &pinned {
            Some(first) => sim_eq(first, &trace),
            None => Ok(()),
        };
        println!(
            "  {label:>20} | {:>7} {:>10} | {:>9} {:>9} {:>7}",
            trace.spans.len(),
            trace.counters.sim_spans,
            if validated.is_ok() { "ok" } else { "FAIL" },
            if reconciled.is_ok() { "ok" } else { "FAIL" },
            if pinned_eq.is_ok() { "ok" } else { "FAIL" },
        );
        if let Err(e) = validated {
            failures.push(format!("trace arm {label}: validation failed: {e}"));
        }
        if let Err(e) = reconciled {
            failures.push(format!("trace arm {label}: reconciliation failed: {e}"));
        }
        if let Err(e) = pinned_eq {
            failures.push(format!(
                "trace arm {label}: Sim spans diverged from the pinned cell: {e}"
            ));
        }
        if pinned.is_none() {
            pinned = Some(trace.clone());
        }
        if label == "sharded/binary+loss" {
            export = Some(trace);
        }
    }
    (failures, export)
}

fn main() {
    let opts = BenchOpts::default();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples_at_least(6000));
    let iters = opts.capped(opts.iters.max(8), 1);
    println!(
        "fig09 cluster — fig17 workload at dp=2, {iters} iteration(s) per arm, \
         {} thread(s)\n",
        rayon::current_num_threads()
    );
    println!(
        "{:>5} {:>9} {:>7} | {:>12} {:>12} {:>8} | {:>9} {:>10} {:>9}",
        "model", "topology", "codec", "serial (ms)", "cluster (ms)", "overlap",
        "blob (KB)", "wire (KB)", "dec (ms)"
    );

    let mut outcomes = Vec::new();
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(2, 1, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(2, 4, 1)),
    ] {
        let o = run_model(name, model, parallel, &dataset, iters);
        for arm in &o.arms {
            let s = &arm.stats;
            println!(
                "{:>5} {:>9} {:>7} | {:>12.1} {:>12.1} {:>7.1}% | {:>9.1} {:>10.1} {:>9.2}",
                o.name,
                s.topology,
                s.codec,
                o.serial_wall_us / 1e3,
                s.cluster_wall_us / 1e3,
                s.overlap_ratio * 100.0,
                s.mean_blob_bytes / 1e3,
                s.wire_bytes as f64 / 1e3,
                s.decode_us / 1e3,
            );
        }
        for c in &o.churn_arms {
            let ch = &c.stats.churn;
            println!(
                "{:>5} {:>9} {:>7} | churn +{:.1} ms: {} applied, {} reissued, \
                 {} stale, {} moved, {} dup blobs",
                o.name,
                c.stats.topology,
                c.stats.codec,
                c.churn_overhead_us.max(0.0) / 1e3,
                ch.events_applied,
                ch.tickets_reissued,
                ch.stale_completions,
                ch.replicas_moved,
                ch.duplicate_blobs_discarded,
            );
        }
        outcomes.push(o);
    }

    println!(
        "\n  datacenter arm — GPT 3.35B pp2, dp = executor hosts, racks of \
         {DC_HOSTS_PER_RACK}, {DC_OVERSUBSCRIPTION}x oversubscribed cross-rack"
    );
    println!(
        "  {:>5} {:>8} {:>7} {:>6} | {:>12} {:>13} {:>13}",
        "hosts", "store", "codec", "churn", "cluster (ms)", "max link (KB)", "fetched (KB)"
    );
    let datacenter = run_datacenter(&dataset, &opts);
    for p in &datacenter {
        for c in &p.cells {
            let fetched: u64 = c.stats.executor_hosts.iter().map(|h| h.bytes_fetched).sum();
            println!(
                "  {:>5} {:>8} {:>7} {:>6} | {:>12.1} {:>13.1} {:>13.1}",
                p.hosts,
                c.stats.placement,
                c.stats.codec,
                if c.churned { "loss" } else { "-" },
                c.stats.cluster_wall_us / 1e3,
                c.stats.max_link_bytes as f64 / 1e3,
                fetched as f64 / 1e3,
            );
        }
    }

    let (trace_failures, trace_export) = run_trace_arm(&dataset, &opts);
    if let Some(trace) = &trace_export {
        write_json("TRACE_cluster", trace);
        let chrome = to_chrome_trace(trace);
        let _ = std::fs::create_dir_all("results");
        match std::fs::write("results/TRACE_cluster_chrome.json", &chrome) {
            Ok(()) => println!(
                "  -> results/TRACE_cluster_chrome.json (load in Perfetto or chrome://tracing)"
            ),
            Err(e) => eprintln!("warning: could not write chrome trace: {e}"),
        }
    }

    // Codec A/B: blob bytes are exact and deterministic (sum over the
    // in-run arms); decode time comes from the controlled per-model
    // microbenchmark — the in-run decode walls compete with the planner
    // pool for CPU and measure the scheduler on a small container.
    let codec_total = |codec: &str, f: &dyn Fn(&ClusterReport) -> f64| -> f64 {
        outcomes
            .iter()
            .flat_map(|o| o.arms.iter())
            .filter(|a| a.stats.codec == codec)
            .map(|a| f(&a.stats))
            .sum()
    };
    let json_blob_bytes = codec_total("json", &|s| s.mean_blob_bytes);
    let binary_blob_bytes = codec_total("binary", &|s| s.mean_blob_bytes);
    let flat_blob_bytes = codec_total("flat", &|s| s.mean_blob_bytes);
    let json_decode_us: f64 = outcomes.iter().map(|o| o.codec_bench.json_decode_us).sum();
    let binary_decode_us: f64 = outcomes
        .iter()
        .map(|o| o.codec_bench.binary_decode_us)
        .sum();
    let flat_decode_us: f64 = outcomes.iter().map(|o| o.codec_bench.flat_decode_us).sum();
    println!(
        "\n  codec A/B/C: binary blobs at {:.1}% of JSON bytes, flat at {:.1}% of binary; \
         decode ({DECODE_REPS}x, controlled) json {:.2} ms, binary {:.2} ms, \
         flat {:.4} ms (validate-and-wrap, no tree build)",
        100.0 * binary_blob_bytes / json_blob_bytes.max(1.0),
        100.0 * flat_blob_bytes / binary_blob_bytes.max(1.0),
        json_decode_us / 1e3,
        binary_decode_us / 1e3,
        flat_decode_us / 1e3,
    );

    let per_model = serde_json::Value::Object(
        outcomes
            .iter()
            .map(|o| {
                (
                    o.name.to_string(),
                    serde_json::Value::Object(vec![
                        ("iterations".to_string(), serde_json::json!(o.iterations)),
                        (
                            "serial_wall_us".to_string(),
                            serde_json::json!(o.serial_wall_us),
                        ),
                        (
                            "codec_bench".to_string(),
                            serde_json::Value::Object(vec![
                                (
                                    "json_bytes".to_string(),
                                    serde_json::json!(o.codec_bench.json_bytes),
                                ),
                                (
                                    "binary_bytes".to_string(),
                                    serde_json::json!(o.codec_bench.binary_bytes),
                                ),
                                (
                                    "flat_bytes".to_string(),
                                    serde_json::json!(o.codec_bench.flat_bytes),
                                ),
                                (
                                    "json_decode_us".to_string(),
                                    serde_json::json!(o.codec_bench.json_decode_us),
                                ),
                                (
                                    "binary_decode_us".to_string(),
                                    serde_json::json!(o.codec_bench.binary_decode_us),
                                ),
                                (
                                    "flat_decode_us".to_string(),
                                    serde_json::json!(o.codec_bench.flat_decode_us),
                                ),
                                ("decode_reps".to_string(), serde_json::json!(DECODE_REPS)),
                            ]),
                        ),
                        (
                            "arms".to_string(),
                            serde_json::Value::Array(
                                o.arms
                                    .iter()
                                    .map(|a| {
                                        let mut v = match serde_json::to_value(&a.stats) {
                                            serde_json::Value::Object(m) => m,
                                            _ => unreachable!("reports are objects"),
                                        };
                                        v.push((
                                            "report_divergence".to_string(),
                                            serde_json::json!(a
                                                .divergence
                                                .clone()
                                                .unwrap_or_default()),
                                        ));
                                        serde_json::Value::Object(v)
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "churn_arms".to_string(),
                            serde_json::Value::Array(
                                o.churn_arms
                                    .iter()
                                    .map(|c| {
                                        let mut v = match serde_json::to_value(&c.stats) {
                                            serde_json::Value::Object(m) => m,
                                            _ => unreachable!("reports are objects"),
                                        };
                                        v.push((
                                            "undisturbed_wall_us".to_string(),
                                            serde_json::json!(c.undisturbed_wall_us),
                                        ));
                                        v.push((
                                            "churn_overhead_us".to_string(),
                                            serde_json::json!(c.churn_overhead_us),
                                        ));
                                        v.push((
                                            "report_divergence".to_string(),
                                            serde_json::json!(c
                                                .divergence
                                                .clone()
                                                .unwrap_or_default()),
                                        ));
                                        serde_json::Value::Object(v)
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let churn_overhead_us: f64 = outcomes
        .iter()
        .flat_map(|o| o.churn_arms.iter())
        .map(|c| c.churn_overhead_us.max(0.0))
        .sum();
    let out = serde_json::Value::Object(vec![
        ("iterations".to_string(), serde_json::json!(iters)),
        (
            "json_blob_bytes".to_string(),
            serde_json::json!(json_blob_bytes),
        ),
        (
            "binary_blob_bytes".to_string(),
            serde_json::json!(binary_blob_bytes),
        ),
        (
            "flat_blob_bytes".to_string(),
            serde_json::json!(flat_blob_bytes),
        ),
        (
            "binary_to_json_bytes_ratio".to_string(),
            serde_json::json!(binary_blob_bytes / json_blob_bytes.max(1.0)),
        ),
        (
            "flat_to_binary_bytes_ratio".to_string(),
            serde_json::json!(flat_blob_bytes / binary_blob_bytes.max(1.0)),
        ),
        (
            "json_decode_us".to_string(),
            serde_json::json!(json_decode_us),
        ),
        (
            "binary_decode_us".to_string(),
            serde_json::json!(binary_decode_us),
        ),
        (
            "flat_decode_us".to_string(),
            serde_json::json!(flat_decode_us),
        ),
        (
            "flat_to_binary_decode_ratio".to_string(),
            serde_json::json!(flat_decode_us / binary_decode_us.max(1e-9)),
        ),
        (
            "churn_overhead_us".to_string(),
            serde_json::json!(churn_overhead_us),
        ),
        (
            "threads".to_string(),
            serde_json::json!(rayon::current_num_threads()),
        ),
        ("per_model".to_string(), per_model),
        (
            "datacenter".to_string(),
            serde_json::Value::Array(
                datacenter
                    .iter()
                    .map(|p| {
                        serde_json::Value::Object(vec![
                            ("hosts".to_string(), serde_json::json!(p.hosts)),
                            ("iterations".to_string(), serde_json::json!(p.iterations)),
                            (
                                "hosts_per_rack".to_string(),
                                serde_json::json!(DC_HOSTS_PER_RACK),
                            ),
                            (
                                "oversubscription".to_string(),
                                serde_json::json!(DC_OVERSUBSCRIPTION),
                            ),
                            (
                                "serial_wall_us".to_string(),
                                serde_json::json!(p.serial_wall_us),
                            ),
                            (
                                "cells".to_string(),
                                serde_json::Value::Array(
                                    p.cells.iter().map(datacenter_cell_json).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_root_artifact(&opts, "BENCH_cluster.json", &out);
    write_json("fig09_cluster", &out);

    // Hard checks: the golden invariant (churned arms included), the
    // codec acceptance bar, bounded recovery cost, and the trace arm's
    // determinism + reconciliation contract.
    let mut failed = false;
    for f in &trace_failures {
        eprintln!("error: {f}");
        failed = true;
    }
    if trace_export.is_none() {
        eprintln!("error: trace arm produced no export cell");
        failed = true;
    }
    for o in &outcomes {
        for a in &o.arms {
            if let Some(d) = &a.divergence {
                eprintln!(
                    "error: {} {}/{} diverged from serial: {d}",
                    o.name, a.stats.topology, a.stats.codec
                );
                failed = true;
            }
        }
        for c in &o.churn_arms {
            if let Some(d) = &c.divergence {
                eprintln!(
                    "error: {} churned {}/{} diverged from serial: {d}",
                    o.name, c.stats.topology, c.stats.codec
                );
                failed = true;
            }
            let bound = c.undisturbed_wall_us * 3.0 + 5e6;
            if c.stats.cluster_wall_us > bound {
                eprintln!(
                    "error: {} churned {}/{} recovery cost is unbounded: {:.0} µs wall \
                     vs {:.0} µs allowed (3× undisturbed + 5 s)",
                    o.name, c.stats.topology, c.stats.codec, c.stats.cluster_wall_us, bound
                );
                failed = true;
            }
        }
    }
    if binary_blob_bytes * 2.0 > json_blob_bytes {
        eprintln!(
            "error: binary blobs ({binary_blob_bytes} B mean total) exceed half the JSON \
             blobs ({json_blob_bytes} B) — the binary codec stopped earning its keep"
        );
        failed = true;
    }
    if binary_decode_us >= json_decode_us {
        eprintln!(
            "error: binary decode ({binary_decode_us} µs for {DECODE_REPS} reps) is not \
             faster than JSON ({json_decode_us} µs) on the controlled microbenchmark"
        );
        failed = true;
    }
    // The zero-copy bar: flat "decode" is validate-and-wrap, so it must
    // land well under the binary codec's tree rebuild — < 0.2× on the
    // same controlled microbenchmark — and the fixed-width arena must
    // not bloat the wire: ≤ 1.25× the binary blob.
    if flat_decode_us >= 0.2 * binary_decode_us {
        eprintln!(
            "error: flat decode ({flat_decode_us} µs for {DECODE_REPS} reps) is not under \
             0.2x binary decode ({binary_decode_us} µs) on the controlled microbenchmark \
             — the zero-copy path stopped being zero-copy"
        );
        failed = true;
    }
    if flat_blob_bytes > 1.25 * binary_blob_bytes {
        eprintln!(
            "error: flat blobs ({flat_blob_bytes} B mean total) exceed 1.25x the binary \
             blobs ({binary_blob_bytes} B) — the fixed-width arena is bloating the wire"
        );
        failed = true;
    }
    // Datacenter gates: the golden invariant over every cell (churned
    // included), and the fan-out bar at the largest topology.
    for p in &datacenter {
        if !p.serial_feasible {
            eprintln!(
                "error: datacenter {}h serial oracle is infeasible — the sweep proved nothing",
                p.hosts
            );
            failed = true;
        }
        for c in &p.cells {
            if let Some(d) = &c.divergence {
                eprintln!(
                    "error: datacenter {}h {}/{}{} diverged from serial: {d}",
                    p.hosts,
                    c.stats.placement,
                    c.stats.codec,
                    if c.churned { " (churned)" } else { "" }
                );
                failed = true;
            }
        }
    }
    if let Some(p) = datacenter.last() {
        for codec in PlanCodec::ALL {
            let cell = |placement: &str| {
                p.cells.iter().find(|c| {
                    !c.churned && c.stats.placement == placement && c.stats.codec == codec.label()
                })
            };
            match (cell("single"), cell("sharded")) {
                (Some(single), Some(sharded)) => {
                    // The single store host's downlink: every byte the
                    // other executor hosts fetch comes off host 0's NIC
                    // (its own replicas read local copies, uncounted).
                    let downlink: u64 = single
                        .stats
                        .executor_hosts
                        .iter()
                        .map(|h| h.bytes_fetched)
                        .sum();
                    if sharded.stats.max_link_bytes >= downlink {
                        eprintln!(
                            "error: datacenter {}h/{}: sharded busiest link carries \
                             {} B, not strictly below the single store host's {} B \
                             downlink — sharding stopped spreading the plan stream",
                            p.hosts,
                            codec.label(),
                            sharded.stats.max_link_bytes,
                            downlink
                        );
                        failed = true;
                    }
                }
                _ => {
                    eprintln!(
                        "error: datacenter {}h/{}: missing a placement cell for the \
                         fan-out gate",
                        p.hosts,
                        codec.label()
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
