//! Fig. 18: prediction accuracy of the iteration-time and peak-memory cost
//! models — planner estimates vs simulator measurements across experiment
//! settings, reported as mean percentage error per model family.

use dynapipe_bench::{run_point, write_json, BenchOpts, Point};
use dynapipe_core::{DynaPipePlanner, PlannerConfig};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();
    println!("Fig. 18 — cost-model prediction accuracy\n");
    for (name, model, parallels) in [
        (
            "GPT",
            ModelConfig::gpt_6_7b(),
            vec![ParallelConfig::new(1, 2, 4), ParallelConfig::new(2, 2, 2)],
        ),
        (
            "T5",
            ModelConfig::t5_11b(),
            vec![ParallelConfig::new(1, 4, 2), ParallelConfig::new(1, 8, 1)],
        ),
    ] {
        let mut time_pairs: Vec<(f64, f64)> = Vec::new();
        let mut mem_pairs: Vec<(u64, u64)> = Vec::new();
        for parallel in parallels {
            let cm = Arc::new(CostModel::build(
                hw.clone(),
                model,
                parallel,
                &ProfileOptions::default(),
            ));
            if !cm.is_feasible() {
                continue;
            }
            let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
            for (msl, gbs) in [
                (2048usize, 32768usize),
                (2048, 65536),
                (4096, 65536),
                (1024, 16384),
            ] {
                let point = Point {
                    model,
                    num_gpus: 8,
                    max_seq_len: msl,
                    gbs_tokens: gbs,
                };
                let report = run_point(&planner, &dataset, &point, &opts);
                for r in &report.records {
                    time_pairs.push((r.est_time, r.measured_time));
                    mem_pairs.push((
                        r.est_peak.iter().copied().max().unwrap_or(0),
                        r.measured_peak.iter().copied().max().unwrap_or(0),
                    ));
                }
            }
        }
        let time_mape = mape(time_pairs.iter().map(|&(a, b)| (a, b)));
        let mem_mape = mape(mem_pairs.iter().map(|&(a, b)| (a as f64, b as f64)));
        println!(
            "{name}: iteration-time MPE {:.2}%  peak-memory MPE {:.2}%",
            time_mape * 100.0,
            mem_mape * 100.0
        );
        println!("  sample points (estimated vs measured):");
        for (e, m) in time_pairs.iter().take(5) {
            println!("    time   {:10.1} ms vs {:10.1} ms", e / 1e3, m / 1e3);
        }
        for (e, m) in mem_pairs.iter().take(5) {
            println!(
                "    memory {:10.2} GB vs {:10.2} GB",
                *e as f64 / 1e9,
                *m as f64 / 1e9
            );
        }
        out.push(serde_json::json!({
            "model": name,
            "time_mape": time_mape,
            "memory_mape": mem_mape,
            "time_pairs": time_pairs,
            "memory_pairs": mem_pairs,
        }));
    }
    println!(
        "\nShape check (paper Fig. 18): mean percentage error ~4-11% for\n\
         iteration time and <6% for peak memory; estimates cluster around the\n\
         y=x diagonal."
    );
    write_json("fig18_cost_model_accuracy", &out);
}

fn mape(pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for (e, m) in pairs {
        if m > 0.0 {
            sum += (e - m).abs() / m;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}
