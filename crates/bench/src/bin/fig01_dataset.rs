//! Fig. 1b: sequence-length distribution of the multi-task mixture.
//!
//! Prints the log-scale histogram of input lengths of the synthetic FLANv2
//! mixture and the per-task means the calibration targets (CNN/DailyMail
//! ≈ 977.73, MNLI ≈ 51.59).

use dynapipe_bench::{write_json, BenchOpts};
use dynapipe_data::Dataset;

fn main() {
    let opts = BenchOpts::default();
    let n = opts.dataset_samples.max(100_000);
    println!("Fig. 1b — input sequence length distribution ({n} samples)\n");
    let dataset = Dataset::flanv2(opts.seed, n);
    let hist = dataset.length_histogram();
    let max_count = hist.iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
    println!("{:>8} | {:>8} | log-scale", "< length", "count");
    for &(ub, count) in &hist {
        let bar = ((count as f64).ln() / max_count.ln() * 50.0).max(0.0) as usize;
        println!("{ub:>8} | {count:>8} | {}", "#".repeat(bar.min(60)));
    }
    let stats = dataset.input_stats();
    println!(
        "\nmean {:.1}  p50 {}  p99 {}  max {}  (max/mean {:.1}x)",
        stats.mean,
        stats.p50,
        stats.p99,
        stats.max,
        stats.max_over_mean()
    );
    println!("\nper-task calibration:");
    let mut per_task: Vec<(String, Vec<usize>)> = dataset
        .tasks
        .iter()
        .map(|t| (t.name.to_string(), Vec::new()))
        .collect();
    for s in &dataset.samples {
        per_task[s.task].1.push(s.input_len);
    }
    for (name, lens) in &per_task {
        if lens.is_empty() {
            continue;
        }
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        println!("  {name:<28} n={:<7} mean input {mean:8.1}", lens.len());
    }
    write_json(
        "fig01_dataset",
        &serde_json::json!({
            "histogram": hist,
            "stats": stats,
        }),
    );
}
