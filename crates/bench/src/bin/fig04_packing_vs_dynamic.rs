//! Fig. 4: GPT and T5 training performance under packing vs dynamic
//! micro-batching — normalized throughput and padding efficiency vs the
//! maximum sequence length, plus the naive-padding strawman.

use dynapipe_batcher::{sort_samples, MicroBatch, PaddingStats};
use dynapipe_bench::{eval_dynapipe, eval_packing, write_json, BenchOpts, Point};
use dynapipe_data::{Dataset, Sample};
use dynapipe_model::{HardwareModel, ModelConfig};

fn naive_padding_efficiency(dataset: &Dataset, msl: usize, arch: dynapipe_model::ModelArch) -> f64 {
    // Mini-batch-sized chunks padded to the longest sample in each chunk.
    let samples: Vec<Sample> = dataset.samples.iter().map(|s| s.truncated(msl)).collect();
    let mbs: Vec<MicroBatch> = samples
        .chunks(256)
        .map(|c| MicroBatch::new(c.to_vec()))
        .collect();
    PaddingStats::from_micro_batches(&mbs, arch).efficiency()
}

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();
    for (name, model, gpus, msls) in [
        (
            "GPT",
            ModelConfig::gpt_6_7b(),
            8usize,
            vec![512usize, 1024, 2048, 4096, 8192],
        ),
        ("T5", ModelConfig::t5_11b(), 8, vec![512, 1024, 2048, 4096]),
    ] {
        println!("=== Fig. 4 ({name}) — normalized throughput & padding efficiency ===");
        println!(
            "{:>8} | {:>9} {:>9} | {:>7} {:>7} {:>7}",
            "max len", "pack t/s", "dyn t/s", "naive", "pack", "dyn"
        );
        // Normalize throughputs by the best dynamic point, as the paper does.
        let mut rows = Vec::new();
        for &msl in &msls {
            let point = Point {
                model,
                num_gpus: gpus,
                max_seq_len: msl,
                gbs_tokens: 65536,
            };
            let dyna = eval_dynapipe(&hw, &dataset, &point, &opts);
            let packing = match &dyna {
                Some((_, par)) => {
                    // Paper Fig. 4 compares under the same settings.
                    eval_packing(&hw, &dataset, &point, &opts, Some(*par))
                        .or_else(|| eval_packing(&hw, &dataset, &point, &opts, None))
                }
                None => eval_packing(&hw, &dataset, &point, &opts, None),
            };
            let naive_eff = naive_padding_efficiency(&dataset, msl, model.arch);
            let mut sorted: Vec<Sample> =
                dataset.samples.iter().map(|s| s.truncated(msl)).collect();
            sort_samples(model.arch, &mut sorted);
            rows.push((msl, dyna, packing, naive_eff));
        }
        let norm = rows
            .iter()
            .filter_map(|(_, d, _, _)| d.as_ref().map(|(r, _)| r.throughput))
            .fold(1.0, f64::max);
        for (msl, dyna, packing, naive_eff) in &rows {
            let (dyn_tps, dyn_eff) = dyna
                .as_ref()
                .map(|(r, _)| (Some(r.throughput), r.padding_efficiency))
                .unwrap_or((None, 0.0));
            let (pack_tps, pack_eff) = packing
                .as_ref()
                .map(|r| (Some(r.throughput), r.padding_efficiency))
                .unwrap_or((None, 0.0));
            println!(
                "{msl:>8} | {:>9} {:>9} | {naive_eff:>7.3} {pack_eff:>7.3} {dyn_eff:>7.3}",
                pack_tps
                    .map(|t| format!("{:.2}", t / norm))
                    .unwrap_or("OOM".into()),
                dyn_tps
                    .map(|t| format!("{:.2}", t / norm))
                    .unwrap_or("OOM".into()),
            );
            out.push(serde_json::json!({
                "model": name, "max_seq_len": msl,
                "packing_tps": pack_tps, "dynamic_tps": dyn_tps,
                "naive_eff": naive_eff, "packing_eff": pack_eff, "dynamic_eff": dyn_eff,
            }));
        }
        println!();
    }
    println!(
        "Shape check (paper Fig. 4): packing's normalized throughput falls steeply\n\
         with max length; dynamic micro-batching only drifts down slowly. Naive\n\
         padding efficiency collapses while packing and dynamic stay high."
    );
    write_json("fig04_packing_vs_dynamic", &out);
}
