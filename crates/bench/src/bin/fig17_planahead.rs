//! Fig. 17 end-to-end: the pipelined plan-ahead runtime hiding planning
//! behind execution.
//!
//! Runs the fig17 workload (65k-token mini-batches, GPT 6.7B and T5 11B
//! on 8 GPUs) through three drivers:
//!
//! * **serial**: [`run_training`] — the golden-reference plan → simulate
//!   loop, where every microsecond of planning sits on the training
//!   timeline;
//! * **pipelined (in-process)**: [`run_training_pipelined`] — the
//!   plan-ahead runtime: a planner pool plans ahead of a bounded window
//!   while the executor runs the current iteration (replicas in
//!   parallel, programs pre-compiled by the lowering stage);
//! * **pipelined (store-backed)**: the same runtime with
//!   [`PlanDistribution::StoreBacked`] — plans cross the instruction
//!   store as serialized wire blobs (the paper's Fig. 9 Redis
//!   architecture), so this arm additionally pays and reports
//!   serialize/deserialize overhead. The store arm runs **three times**,
//!   once per wire codec ([`PlanCodec::Json`], the length-prefixed
//!   [`PlanCodec::Binary`], and the zero-copy [`PlanCodec::Flat`], whose
//!   executors run engines straight over the fetched bytes), reporting
//!   per-codec blob bytes and serialize/deserialize time — and the bench
//!   exits nonzero if the binary codec's blobs ever exceed JSON's, or if
//!   the flat arena exceeds 1.25× the binary blobs.
//!
//! Wall-clock is measured on the **training timeline** (simulated GPU
//! execution + real host planning), the same planning-vs-iteration
//! methodology as the `fig17_planning_time` bench: in a real deployment
//! execution occupies the cluster for seconds while planning occupies CPU
//! milliseconds; the simulator compresses execution, so host wall alone
//! cannot exhibit the overlap the paper measures. `serial_wall_us` is
//! Σ(planning + execution); `pipelined_wall_us` is the runtime's virtual
//! clock, which only waits for plans that are not ready yet
//! (`exposed_planning_us`). Host walls of both drivers are reported too.
//!
//! Emits `BENCH_runtime.json` with `{serial_wall_us, pipelined_wall_us,
//! exposed_planning_us, hidden_planning_us, overlap_ratio}` plus
//! per-model and per-arm detail (the store arm under `"store"`), and
//! **exits nonzero** if any pipelined `RunReport` — either arm —
//! diverges from the serial driver's (`RunReport::behavior_eq`), or if
//! either arm stops beating the serial timeline — a silent behavior
//! change or a serialization bit-rot must never masquerade as a
//! wall-clock win. `run_all --smoke` runs this bin with one capped
//! iteration, so the store arm's divergence check runs in CI in minutes.

use dynapipe_bench::{write_json, write_root_artifact, BenchOpts, Point};
use dynapipe_core::{
    run_training, run_training_pipelined, DynaPipePlanner, PlanCodec, PlanDistribution,
    PlannerConfig, RunConfig, RuntimeConfig,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::sync::Arc;
use std::time::Instant;

struct ArmOutcome {
    pipelined_wall_us: f64,
    total_planning_us: f64,
    exposed_us: f64,
    hidden_us: f64,
    /// The library's `RuntimeStats::overlap_ratio` — single definition.
    overlap_ratio: f64,
    host_us: f64,
    /// Worker-side serialize time (µs; store arm only).
    serialize_us: f64,
    /// Executor-side take+decode time (µs; store arm only).
    deserialize_us: f64,
    /// Total wire bytes pushed through the store (store arm only).
    blob_bytes: u64,
    divergence: Option<String>,
}

struct ModelOutcome {
    name: &'static str,
    iterations: usize,
    serial_wall_us: f64,
    serial_host_us: f64,
    in_process: ArmOutcome,
    store_backed: ArmOutcome,
    store_binary: ArmOutcome,
    store_flat: ArmOutcome,
}

fn run_model(
    name: &'static str,
    model: ModelConfig,
    parallel: ParallelConfig,
    dataset: &Dataset,
    iters: usize,
    runtime: RuntimeConfig,
) -> ModelOutcome {
    let hw = HardwareModel::a100_cluster();
    let cm = Arc::new(CostModel::build(
        hw,
        model,
        parallel,
        &ProfileOptions::default(),
    ));
    let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
    let point = Point {
        model,
        num_gpus: 8,
        max_seq_len: 4096,
        gbs_tokens: 65536,
    };
    let gbs = GlobalBatchConfig {
        tokens_per_batch: point.gbs_tokens,
        max_seq_len: point.max_seq_len,
    };
    let run = RunConfig {
        max_iterations: Some(iters),
        ..Default::default()
    };

    let t0 = Instant::now();
    let serial = run_training(&planner, dataset, gbs, run);
    let serial_host_us = t0.elapsed().as_secs_f64() * 1e6;
    // The serial training timeline: every iteration pays planning, then
    // executes.
    let serial_wall_us: f64 = serial
        .records
        .iter()
        .map(|r| r.planning_time_us + r.measured_time)
        .sum();

    let arm = |distribution: PlanDistribution, codec: PlanCodec| -> (ArmOutcome, usize) {
        let t1 = Instant::now();
        let (pipelined, stats) = run_training_pipelined(
            &planner,
            dataset,
            gbs,
            run,
            RuntimeConfig {
                distribution,
                codec,
                ..runtime
            },
        );
        let host_us = t1.elapsed().as_secs_f64() * 1e6;
        (
            ArmOutcome {
                pipelined_wall_us: stats.pipelined_wall_us,
                total_planning_us: stats.total_planning_us(),
                exposed_us: stats.exposed_planning_us(),
                hidden_us: stats.hidden_planning_us(),
                overlap_ratio: stats.overlap_ratio(),
                host_us,
                // `+ 0.0` maps the empty-sum -0.0 identity (in-process
                // arm) to a plain 0.0 in the artifact.
                serialize_us: stats.serialize_us.iter().sum::<f64>() + 0.0,
                deserialize_us: stats.deserialize_us.iter().sum::<f64>() + 0.0,
                blob_bytes: stats.blob_bytes.iter().map(|&b| b as u64).sum(),
                divergence: serial.behavior_eq(&pipelined).err(),
            },
            pipelined.records.len(),
        )
    };
    let (in_process, iterations) = arm(PlanDistribution::InProcess, PlanCodec::Json);
    let (store_backed, _) = arm(PlanDistribution::StoreBacked, PlanCodec::Json);
    let (store_binary, _) = arm(PlanDistribution::StoreBacked, PlanCodec::Binary);
    let (store_flat, _) = arm(PlanDistribution::StoreBacked, PlanCodec::Flat);
    ModelOutcome {
        name,
        iterations,
        serial_wall_us,
        serial_host_us,
        in_process,
        store_backed,
        store_binary,
        store_flat,
    }
}

fn arm_json(o: &ArmOutcome) -> serde_json::Value {
    serde_json::json!({
        "pipelined_wall_us": o.pipelined_wall_us,
        "total_planning_us": o.total_planning_us,
        "exposed_planning_us": o.exposed_us,
        "hidden_planning_us": o.hidden_us,
        "overlap_ratio": o.overlap_ratio,
        "host_us": o.host_us,
        "serialize_us": o.serialize_us,
        "deserialize_us": o.deserialize_us,
        "blob_bytes": o.blob_bytes,
        "report_divergence": o.divergence.clone().unwrap_or_default(),
    })
}

fn main() {
    let opts = BenchOpts::default();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples_at_least(6000));
    let iters = opts.capped(opts.iters.max(8), 2);
    let runtime = RuntimeConfig::default();
    println!(
        "plan-ahead runtime — fig17 workload, {iters} iterations, \
         window {} / {} planner worker(s), {} thread(s)\n",
        runtime.plan_ahead,
        runtime.workers,
        rayon::current_num_threads()
    );
    println!(
        "{:>5} {:>6} | {:>12} {:>12} | {:>10} {:>10} {:>8} | {:>10}",
        "model", "arm", "serial (ms)", "pipe (ms)", "plan (ms)", "hidden", "overlap", "serde (ms)"
    );

    let mut outcomes = Vec::new();
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(1, 2, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(1, 4, 2)),
    ] {
        let o = run_model(name, model, parallel, &dataset, iters, runtime);
        for (arm_name, a) in [
            ("arc", &o.in_process),
            ("store", &o.store_backed),
            ("st-bin", &o.store_binary),
            ("st-flat", &o.store_flat),
        ] {
            println!(
                "{:>5} {:>6} | {:>12.1} {:>12.1} | {:>10.1} {:>10.1} {:>7.1}% | {:>10.2}",
                o.name,
                arm_name,
                o.serial_wall_us / 1e3,
                a.pipelined_wall_us / 1e3,
                a.total_planning_us / 1e3,
                a.hidden_us / 1e3,
                a.overlap_ratio * 100.0,
                (a.serialize_us + a.deserialize_us) / 1e3,
            );
        }
        outcomes.push(o);
    }

    let serial_wall_us: f64 = outcomes.iter().map(|o| o.serial_wall_us).sum();
    let pipelined_wall_us: f64 = outcomes.iter().map(|o| o.in_process.pipelined_wall_us).sum();
    let exposed_planning_us: f64 = outcomes.iter().map(|o| o.in_process.exposed_us).sum();
    let hidden_planning_us: f64 = outcomes.iter().map(|o| o.in_process.hidden_us).sum();
    let total_planning_us: f64 = outcomes.iter().map(|o| o.in_process.total_planning_us).sum();
    let overlap_ratio = if total_planning_us > 0.0 {
        hidden_planning_us / total_planning_us
    } else {
        1.0
    };
    let store_wall_us: f64 = outcomes
        .iter()
        .map(|o| o.store_backed.pipelined_wall_us)
        .sum();
    let store_hidden_us: f64 = outcomes.iter().map(|o| o.store_backed.hidden_us).sum();
    let store_total_us: f64 = outcomes
        .iter()
        .map(|o| o.store_backed.total_planning_us)
        .sum();
    let store_overlap_ratio = if store_total_us > 0.0 {
        store_hidden_us / store_total_us
    } else {
        1.0
    };
    let store_serde_us: f64 = outcomes
        .iter()
        .map(|o| o.store_backed.serialize_us + o.store_backed.deserialize_us)
        .sum();
    let json_blob_bytes: u64 = outcomes.iter().map(|o| o.store_backed.blob_bytes).sum();
    let binary_blob_bytes: u64 = outcomes.iter().map(|o| o.store_binary.blob_bytes).sum();
    let binary_serde_us: f64 = outcomes
        .iter()
        .map(|o| o.store_binary.serialize_us + o.store_binary.deserialize_us)
        .sum();
    let flat_blob_bytes: u64 = outcomes.iter().map(|o| o.store_flat.blob_bytes).sum();
    let flat_serde_us: f64 = outcomes
        .iter()
        .map(|o| o.store_flat.serialize_us + o.store_flat.deserialize_us)
        .sum();
    println!(
        "\n  total: serial {:.1} ms vs pipelined {:.1} ms (in-process, {:.1}% hidden) \
         vs {:.1} ms (store-backed, {:.1}% hidden, {:.2} ms serde)",
        serial_wall_us / 1e3,
        pipelined_wall_us / 1e3,
        overlap_ratio * 100.0,
        store_wall_us / 1e3,
        store_overlap_ratio * 100.0,
        store_serde_us / 1e3,
    );
    println!(
        "  wire codec: binary {:.1} KB vs JSON {:.1} KB ({:.1}%), serde {:.2} ms vs {:.2} ms",
        binary_blob_bytes as f64 / 1e3,
        json_blob_bytes as f64 / 1e3,
        100.0 * binary_blob_bytes as f64 / (json_blob_bytes as f64).max(1.0),
        binary_serde_us / 1e3,
        store_serde_us / 1e3,
    );
    println!(
        "  zero-copy: flat {:.1} KB ({:.1}% of binary), serde {:.2} ms \
         (engines run over the wire bytes; deserialize is validate-and-wrap)",
        flat_blob_bytes as f64 / 1e3,
        100.0 * flat_blob_bytes as f64 / (binary_blob_bytes as f64).max(1.0),
        flat_serde_us / 1e3,
    );

    let per_model = serde_json::Value::Object(
        outcomes
            .iter()
            .map(|o| {
                (
                    o.name.to_string(),
                    serde_json::json!({
                        "iterations": o.iterations,
                        "serial_wall_us": o.serial_wall_us,
                        "serial_host_us": o.serial_host_us,
                        "in_process": arm_json(&o.in_process),
                        "store": arm_json(&o.store_backed),
                        "store_binary": arm_json(&o.store_binary),
                        "store_flat": arm_json(&o.store_flat),
                    }),
                )
            })
            .collect(),
    );
    let out = serde_json::Value::Object(vec![
        ("serial_wall_us".to_string(), serde_json::json!(serial_wall_us)),
        (
            "pipelined_wall_us".to_string(),
            serde_json::json!(pipelined_wall_us),
        ),
        (
            "exposed_planning_us".to_string(),
            serde_json::json!(exposed_planning_us),
        ),
        (
            "hidden_planning_us".to_string(),
            serde_json::json!(hidden_planning_us),
        ),
        ("overlap_ratio".to_string(), serde_json::json!(overlap_ratio)),
        (
            "store_pipelined_wall_us".to_string(),
            serde_json::json!(store_wall_us),
        ),
        (
            "store_overlap_ratio".to_string(),
            serde_json::json!(store_overlap_ratio),
        ),
        (
            "store_serde_us".to_string(),
            serde_json::json!(store_serde_us),
        ),
        (
            "json_blob_bytes".to_string(),
            serde_json::json!(json_blob_bytes),
        ),
        (
            "binary_blob_bytes".to_string(),
            serde_json::json!(binary_blob_bytes),
        ),
        (
            "binary_serde_us".to_string(),
            serde_json::json!(binary_serde_us),
        ),
        (
            "flat_blob_bytes".to_string(),
            serde_json::json!(flat_blob_bytes),
        ),
        (
            "flat_serde_us".to_string(),
            serde_json::json!(flat_serde_us),
        ),
        ("iterations".to_string(), serde_json::json!(iters)),
        (
            "plan_ahead".to_string(),
            serde_json::json!(runtime.plan_ahead),
        ),
        ("workers".to_string(), serde_json::json!(runtime.workers)),
        (
            "threads".to_string(),
            serde_json::json!(rayon::current_num_threads()),
        ),
        ("per_model".to_string(), per_model),
    ]);
    // The canonical artifact at the repo root (what CI trend-tracks), plus
    // a copy under results/ with the other figure outputs.
    write_root_artifact(&opts, "BENCH_runtime.json", &out);
    write_json("fig17_planahead", &out);

    // Fail loudly on any behavioral divergence: neither pipelined arm is
    // allowed to move anything but wall-clock. The store arm is exactly
    // where serialization bit-rot would surface.
    let mut failed = false;
    for o in &outcomes {
        for (arm_name, a) in [
            ("in-process", &o.in_process),
            ("store-backed", &o.store_backed),
            ("store-binary", &o.store_binary),
            ("store-flat", &o.store_flat),
        ] {
            if let Some(d) = &a.divergence {
                eprintln!(
                    "error: {} {arm_name} report diverged from serial: {d}",
                    o.name
                );
                failed = true;
            }
        }
    }
    let store_binary_wall_us: f64 = outcomes
        .iter()
        .map(|o| o.store_binary.pipelined_wall_us)
        .sum();
    let store_flat_wall_us: f64 = outcomes
        .iter()
        .map(|o| o.store_flat.pipelined_wall_us)
        .sum();
    for (arm_name, wall) in [
        ("in-process", pipelined_wall_us),
        ("store-backed", store_wall_us),
        ("store-binary", store_binary_wall_us),
        ("store-flat", store_flat_wall_us),
    ] {
        if wall >= serial_wall_us {
            eprintln!(
                "error: {arm_name} pipelined wall {wall} µs did not beat serial \
                 {serial_wall_us} µs — planning is no longer being hidden"
            );
            failed = true;
        }
    }
    // The binary codec's whole purpose is smaller blobs; bytes are
    // deterministic, so this gate holds in smoke runs too.
    if binary_blob_bytes > json_blob_bytes {
        eprintln!(
            "error: binary wire ({binary_blob_bytes} B) exceeds JSON ({json_blob_bytes} B)"
        );
        failed = true;
    }
    // The flat arena trades nesting for fixed-width records; bytes are
    // deterministic, so this bloat gate holds in smoke runs too.
    if flat_blob_bytes as f64 > 1.25 * binary_blob_bytes as f64 {
        eprintln!(
            "error: flat wire ({flat_blob_bytes} B) exceeds 1.25x binary \
             ({binary_blob_bytes} B) — the fixed-width arena is bloating the wire"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
