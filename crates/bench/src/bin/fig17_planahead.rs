//! Fig. 17 end-to-end: the pipelined plan-ahead runtime hiding planning
//! behind execution.
//!
//! Runs the fig17 workload (65k-token mini-batches, GPT 6.7B and T5 11B
//! on 8 GPUs) through both drivers:
//!
//! * **serial**: [`run_training`] — the golden-reference plan → simulate
//!   loop, where every microsecond of planning sits on the training
//!   timeline;
//! * **pipelined**: [`run_training_pipelined`] — the plan-ahead runtime:
//!   a planner pool plans ahead of a bounded window while the executor
//!   runs the current iteration (replicas in parallel, programs
//!   pre-compiled by the lowering stage).
//!
//! Wall-clock is measured on the **training timeline** (simulated GPU
//! execution + real host planning), the same planning-vs-iteration
//! methodology as the `fig17_planning_time` bench: in a real deployment
//! execution occupies the cluster for seconds while planning occupies CPU
//! milliseconds; the simulator compresses execution, so host wall alone
//! cannot exhibit the overlap the paper measures. `serial_wall_us` is
//! Σ(planning + execution); `pipelined_wall_us` is the runtime's virtual
//! clock, which only waits for plans that are not ready yet
//! (`exposed_planning_us`). Host walls of both drivers are reported too.
//!
//! Emits `BENCH_runtime.json` with `{serial_wall_us, pipelined_wall_us,
//! exposed_planning_us, hidden_planning_us, overlap_ratio}` plus
//! per-model detail, and **exits nonzero** if any pipelined `RunReport`
//! diverges from the serial driver's (`RunReport::behavior_eq`) — a
//! silent behavior change must never masquerade as a wall-clock win.

use dynapipe_bench::{write_json, write_root_artifact, BenchOpts, Point};
use dynapipe_core::{
    run_training, run_training_pipelined, DynaPipePlanner, PlannerConfig, RunConfig,
    RuntimeConfig,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::sync::Arc;
use std::time::Instant;

struct ModelOutcome {
    name: &'static str,
    iterations: usize,
    serial_wall_us: f64,
    pipelined_wall_us: f64,
    total_planning_us: f64,
    exposed_us: f64,
    hidden_us: f64,
    /// The library's `RuntimeStats::overlap_ratio` — single definition.
    overlap_ratio: f64,
    serial_host_us: f64,
    pipelined_host_us: f64,
    divergence: Option<String>,
}

fn run_model(
    name: &'static str,
    model: ModelConfig,
    parallel: ParallelConfig,
    dataset: &Dataset,
    iters: usize,
    runtime: RuntimeConfig,
) -> ModelOutcome {
    let hw = HardwareModel::a100_cluster();
    let cm = Arc::new(CostModel::build(
        hw,
        model,
        parallel,
        &ProfileOptions::default(),
    ));
    let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
    let point = Point {
        model,
        num_gpus: 8,
        max_seq_len: 4096,
        gbs_tokens: 65536,
    };
    let gbs = GlobalBatchConfig {
        tokens_per_batch: point.gbs_tokens,
        max_seq_len: point.max_seq_len,
    };
    let run = RunConfig {
        max_iterations: Some(iters),
        ..Default::default()
    };

    let t0 = Instant::now();
    let serial = run_training(&planner, dataset, gbs, run);
    let serial_host_us = t0.elapsed().as_secs_f64() * 1e6;
    // The serial training timeline: every iteration pays planning, then
    // executes.
    let serial_wall_us: f64 = serial
        .records
        .iter()
        .map(|r| r.planning_time_us + r.measured_time)
        .sum();

    let t1 = Instant::now();
    let (pipelined, stats) = run_training_pipelined(&planner, dataset, gbs, run, runtime);
    let pipelined_host_us = t1.elapsed().as_secs_f64() * 1e6;

    let divergence = serial.behavior_eq(&pipelined).err();
    ModelOutcome {
        name,
        iterations: pipelined.records.len(),
        serial_wall_us,
        pipelined_wall_us: stats.pipelined_wall_us,
        total_planning_us: stats.total_planning_us(),
        exposed_us: stats.exposed_planning_us(),
        hidden_us: stats.hidden_planning_us(),
        overlap_ratio: stats.overlap_ratio(),
        serial_host_us,
        pipelined_host_us,
        divergence,
    }
}

fn main() {
    let opts = BenchOpts::default();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples_at_least(6000));
    let iters = opts.capped(opts.iters.max(8), 2);
    let runtime = RuntimeConfig::default();
    println!(
        "plan-ahead runtime — fig17 workload, {iters} iterations, \
         window {} / {} planner worker(s), {} thread(s)\n",
        runtime.plan_ahead,
        runtime.workers,
        rayon::current_num_threads()
    );
    println!(
        "{:>5} | {:>12} {:>12} | {:>10} {:>10} {:>8} | {:>9} {:>9}",
        "model",
        "serial (ms)",
        "pipe (ms)",
        "plan (ms)",
        "hidden",
        "overlap",
        "host-s",
        "host-p"
    );

    let mut outcomes = Vec::new();
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(1, 2, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(1, 4, 2)),
    ] {
        let o = run_model(name, model, parallel, &dataset, iters, runtime);
        let overlap = o.overlap_ratio;
        println!(
            "{:>5} | {:>12.1} {:>12.1} | {:>10.1} {:>10.1} {:>7.1}% | {:>9.1} {:>9.1}",
            o.name,
            o.serial_wall_us / 1e3,
            o.pipelined_wall_us / 1e3,
            o.total_planning_us / 1e3,
            o.hidden_us / 1e3,
            overlap * 100.0,
            o.serial_host_us / 1e3,
            o.pipelined_host_us / 1e3,
        );
        outcomes.push(o);
    }

    let serial_wall_us: f64 = outcomes.iter().map(|o| o.serial_wall_us).sum();
    let pipelined_wall_us: f64 = outcomes.iter().map(|o| o.pipelined_wall_us).sum();
    let exposed_planning_us: f64 = outcomes.iter().map(|o| o.exposed_us).sum();
    let hidden_planning_us: f64 = outcomes.iter().map(|o| o.hidden_us).sum();
    let total_planning_us: f64 = outcomes.iter().map(|o| o.total_planning_us).sum();
    let overlap_ratio = if total_planning_us > 0.0 {
        hidden_planning_us / total_planning_us
    } else {
        1.0
    };
    println!(
        "\n  total: serial {:.1} ms vs pipelined {:.1} ms — {:.1}% of planning hidden",
        serial_wall_us / 1e3,
        pipelined_wall_us / 1e3,
        overlap_ratio * 100.0
    );

    let per_model = serde_json::Value::Object(
        outcomes
            .iter()
            .map(|o| {
                (
                    o.name.to_string(),
                    serde_json::json!({
                        "iterations": o.iterations,
                        "serial_wall_us": o.serial_wall_us,
                        "pipelined_wall_us": o.pipelined_wall_us,
                        "total_planning_us": o.total_planning_us,
                        "exposed_planning_us": o.exposed_us,
                        "hidden_planning_us": o.hidden_us,
                        "overlap_ratio": o.overlap_ratio,
                        "serial_host_us": o.serial_host_us,
                        "pipelined_host_us": o.pipelined_host_us,
                        "report_divergence": o.divergence.clone().unwrap_or_default(),
                    }),
                )
            })
            .collect(),
    );
    let out = serde_json::Value::Object(vec![
        ("serial_wall_us".to_string(), serde_json::json!(serial_wall_us)),
        (
            "pipelined_wall_us".to_string(),
            serde_json::json!(pipelined_wall_us),
        ),
        (
            "exposed_planning_us".to_string(),
            serde_json::json!(exposed_planning_us),
        ),
        (
            "hidden_planning_us".to_string(),
            serde_json::json!(hidden_planning_us),
        ),
        ("overlap_ratio".to_string(), serde_json::json!(overlap_ratio)),
        ("iterations".to_string(), serde_json::json!(iters)),
        (
            "plan_ahead".to_string(),
            serde_json::json!(runtime.plan_ahead),
        ),
        ("workers".to_string(), serde_json::json!(runtime.workers)),
        (
            "threads".to_string(),
            serde_json::json!(rayon::current_num_threads()),
        ),
        ("per_model".to_string(), per_model),
    ]);
    // The canonical artifact at the repo root (what CI trend-tracks), plus
    // a copy under results/ with the other figure outputs.
    write_root_artifact(&opts, "BENCH_runtime.json", &out);
    write_json("fig17_planahead", &out);

    // Fail loudly on any behavioral divergence: the pipelined runtime is
    // only allowed to move wall-clock, never results.
    let mut failed = false;
    for o in &outcomes {
        if let Some(d) = &o.divergence {
            eprintln!("error: {} pipelined report diverged from serial: {d}", o.name);
            failed = true;
        }
    }
    if pipelined_wall_us >= serial_wall_us {
        eprintln!(
            "error: pipelined wall {pipelined_wall_us} µs did not beat serial \
             {serial_wall_us} µs — planning is no longer being hidden"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
