//! Fig. 16: ablation study.
//!
//! (a) Micro-batch construction methods on T5 (11B), msl 4096, GBS 65536,
//!     8 GPUs, with a non-pipelined parallelism (tp=8) so that only the
//!     micro-batching policy differs: MLM+DS packing, token-based with
//!     sorted "(S)" and TSP "(T)" ordering, and the DP algorithm with both
//!     orderings.
//!
//! (b) Pipeline schedules on GPT with 4 pipeline stages: 1F1B vs adaptive
//!     without and with micro-batch reordering, at two global batch sizes,
//!     normalized to 1F1B.

use dynapipe_batcher::OrderingStrategy;
use dynapipe_bench::{eval_packing, eval_token_based, run_point, write_json, BenchOpts, Point};
use dynapipe_core::{DynaPipePlanner, PlannerConfig, ScheduleKind};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();

    // ----- (a) micro-batching methods ------------------------------------
    println!("=== Fig. 16a — micro-batching methods (T5 11B, msl 4096, tp=8) ===");
    let t5 = ModelConfig::t5_11b();
    let parallel = ParallelConfig::new(1, 8, 1);
    let point = Point {
        model: t5,
        num_gpus: 8,
        max_seq_len: 4096,
        gbs_tokens: 65536,
    };
    let cm = Arc::new(CostModel::build(
        hw.clone(),
        t5,
        parallel,
        &ProfileOptions::default(),
    ));
    let mut row = |label: &str, tps: Option<f64>| {
        println!(
            "  {label:<12} {:>10} tokens/s",
            tps.map(|v| format!("{v:.0}")).unwrap_or("OOM".into())
        );
        out.push(serde_json::json!({"part": "a", "method": label, "throughput": tps}));
    };
    let mlm = eval_packing(&hw, &dataset, &point, &opts, Some(parallel));
    row("MLM+DS", mlm.map(|r| r.throughput));
    for (label, ordering) in [
        ("TB (S)", OrderingStrategy::Sort),
        ("TB (T)", OrderingStrategy::Tsp),
    ] {
        let r = eval_token_based(&hw, &dataset, &point, &opts, parallel, ordering);
        row(label, r.map(|x| x.throughput));
    }
    for (label, ordering) in [
        ("DP (S)", OrderingStrategy::Sort),
        ("DP (T)", OrderingStrategy::Tsp),
    ] {
        let cfg = PlannerConfig {
            ordering,
            ..Default::default()
        };
        let planner = DynaPipePlanner::new(cm.clone(), cfg);
        let r = run_point(&planner, &dataset, &point, &opts);
        row(label, r.feasible().then(|| r.throughput()));
    }

    // ----- (b) pipeline schedules -----------------------------------------
    println!("\n=== Fig. 16b — schedule methods (GPT, 4 pipeline stages) ===");
    let gpt = ModelConfig::gpt_6_7b();
    let parallel = ParallelConfig::new(1, 2, 4);
    let cm = Arc::new(CostModel::build(
        hw.clone(),
        gpt,
        parallel,
        &ProfileOptions::default(),
    ));
    println!(
        "{:>8} | {:>8} | {:>18} | {:>10}",
        "GBS", "1F1B", "adaptive(no-re)", "adaptive"
    );
    for gbs in [16384usize, 65536] {
        let point = Point {
            model: gpt,
            num_gpus: 8,
            max_seq_len: 4096,
            gbs_tokens: gbs,
        };
        let tput = |schedule: ScheduleKind| {
            let cfg = PlannerConfig {
                schedule,
                ..Default::default()
            };
            let planner = DynaPipePlanner::new(cm.clone(), cfg);
            let r = run_point(&planner, &dataset, &point, &opts);
            r.feasible().then(|| r.throughput())
        };
        let onefb = tput(ScheduleKind::OneFOneB);
        let adaptive_plain = tput(ScheduleKind::Adaptive { reorder: false });
        let adaptive = tput(ScheduleKind::Adaptive { reorder: true });
        let norm = onefb.unwrap_or(1.0);
        let f = |x: Option<f64>| {
            x.map(|v| format!("{:.3}", v / norm))
                .unwrap_or("OOM".into())
        };
        println!(
            "{gbs:>8} | {:>8} | {:>18} | {:>10}",
            f(onefb),
            f(adaptive_plain),
            f(adaptive)
        );
        out.push(serde_json::json!({
            "part": "b", "gbs": gbs,
            "onefb": onefb, "adaptive_noreorder": adaptive_plain, "adaptive": adaptive,
        }));
    }
    println!(
        "\nShape check (paper Fig. 16): TB beats MLM+DS; DP beats TB; (S) and (T)\n\
         orderings are close. Adaptive scheduling gains a few percent over 1F1B\n\
         (≈10% at small GBS, less at large), with reordering adding most at\n\
         small global batch sizes."
    );
    write_json("fig16_ablation", &out);
}
