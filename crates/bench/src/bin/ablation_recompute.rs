//! Ablation: dynamic recomputation selection (§7).
//!
//! For GPT and T5 deployments at several maximum sequence lengths, compare
//! throughput when the planner is *forced* into each recomputation mode
//! against DynaPipe's per-iteration dynamic choice. The paper's claim: the
//! best mode depends on the workload's memory pressure, and picking it
//! dynamically gets the best of every regime.

use dynapipe_bench::{probe_minibatches, run_point, write_json, BenchOpts, Point};
use dynapipe_core::{driver::simulate_iteration, DynaPipePlanner, PlannerConfig, RunConfig};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig, RecomputeMode};
use dynapipe_sim::AllocatorMode;
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();
    println!("Ablation — recomputation modes (tokens/s; forced vs dynamic)\n");
    println!(
        "{:>5} {:>8} | {:>9} {:>9} {:>9} | {:>9} {:>10}",
        "model", "max len", "none", "selective", "full", "dynamic", "dyn picks"
    );
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(1, 2, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(1, 4, 2)),
    ] {
        let cm = Arc::new(CostModel::build(
            hw.clone(),
            model,
            parallel,
            &ProfileOptions::default(),
        ));
        let planner = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());
        let run = RunConfig {
            max_iterations: None,
            jitter: None,
            allocator: AllocatorMode::PreAllocatedPool,
            record_trace: false,
        };
        for msl in [512usize, 2048, 8192] {
            let point = Point {
                model,
                num_gpus: 8,
                max_seq_len: msl,
                gbs_tokens: 65536,
            };
            let probes = probe_minibatches(&dataset, &point, 2);
            let budget = planner.planning_budget();
            let mut forced = Vec::new();
            for mode in RecomputeMode::ALL {
                let mut tokens = 0u64;
                let mut time = 0.0;
                let mut ok = true;
                for (i, mb) in probes.iter().enumerate() {
                    let mut samples = mb.clone();
                    dynapipe_batcher::sort_samples(cm.model.arch, &mut samples);
                    match planner
                        .plan_with_mode(&samples, budget, mode)
                        .ok()
                        .and_then(|p| {
                            simulate_iteration(&cm, &p, &run, i)
                                .ok()
                                .map(|(t, _, _)| (p.actual_tokens, t))
                        }) {
                        Some((tok, t)) => {
                            tokens += tok;
                            time += t;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                forced.push((ok && time > 0.0).then(|| tokens as f64 / (time / 1e6)));
            }
            // Dynamic selection via the normal path.
            let report = run_point(&planner, &dataset, &point, &opts);
            let dynamic = report.feasible().then(|| report.throughput());
            let picks: String = report
                .records
                .iter()
                .map(|r| r.recompute.chars().next().unwrap_or('?'))
                .collect();
            let f = |x: &Option<f64>| x.map(|v| format!("{v:.0}")).unwrap_or("OOM".into());
            println!(
                "{name:>5} {msl:>8} | {:>9} {:>9} {:>9} | {:>9} {:>10}",
                f(&forced[0]),
                f(&forced[1]),
                f(&forced[2]),
                f(&dynamic),
                picks
            );
            out.push(serde_json::json!({
                "model": name, "max_seq_len": msl,
                "none": forced[0], "selective": forced[1], "full": forced[2],
                "dynamic": dynamic, "per_iteration_picks": picks,
            }));
        }
    }
    println!(
        "\nShape check (§7): no single forced mode wins everywhere — storing\n\
         activations wins when memory is abundant, recomputation wins when the\n\
         workload is activation-bound — and the dynamic choice tracks the best\n\
         forced mode at every point ('n'/'s'/'f' = per-iteration picks)."
    );
    write_json("ablation_recompute", &out);
}
