//! Planning-speed regression bench: serial reference vs optimized hot path.
//!
//! Reuses the Fig. 17 workload (65k-token mini-batches of the FLANv2-like
//! dataset, every §7 recompute mode swept) and times the DP partitioning
//! core — the dominant term in per-iteration planning — two ways:
//!
//! * **serial**: the retained reference path
//!   ([`Partitioner::partition_reference`]): per-mode slice-table rebuild,
//!   full `t_max` candidate sweep, no parallelism, no pruning;
//! * **optimized**: the production path: one mode-independent shape pass
//!   shared across all recompute modes, deduplicated cost pricing, and the
//!   pruned parallel `t_max` sweep.
//!
//! Emits `BENCH_planning.json` with `{serial_us, parallel_us, speedup}`
//! (plus per-model breakdowns) so future changes have a planning-time
//! trajectory to compare against. Equivalence of the chosen objectives is
//! asserted on every measured mini-batch — the speed-up must never come
//! from choosing different partitions.

use dynapipe_batcher::{sort_samples, DpConfig, Partitioner, SliceFwdCosts};
use dynapipe_bench::{probe_minibatches, write_json, BenchOpts, Point};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, Sample};
use dynapipe_model::memory::RecomputeMode;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::time::Instant;

struct ModelRun {
    name: &'static str,
    serial_us: f64,
    parallel_us: f64,
}

fn dp_config(cm: &CostModel, mode: RecomputeMode) -> DpConfig {
    let mut cfg = DpConfig::new(cm.min_activation_budget());
    cfg.recompute = mode;
    cfg.max_mb_samples = 128;
    cfg
}

fn run_model(
    name: &'static str,
    model: ModelConfig,
    parallel: ParallelConfig,
    minibatches: &[Vec<Sample>],
) -> ModelRun {
    let hw = HardwareModel::a100_cluster();
    let cm = CostModel::build(hw, model, parallel, &ProfileOptions::default());
    let ordered: Vec<Vec<Sample>> = minibatches
        .iter()
        .map(|mb| {
            let mut s = mb.clone();
            sort_samples(cm.model.arch, &mut s);
            s
        })
        .collect();

    // Serial reference: rebuild the fused slice table per recompute mode,
    // full candidate sweep.
    let t0 = Instant::now();
    let mut serial_objectives = Vec::new();
    for mb in &ordered {
        for mode in RecomputeMode::ALL {
            let p = Partitioner::new(&cm, dp_config(&cm, mode));
            serial_objectives.push(
                p.partition_reference(mb)
                    .map(|r| r.est_iteration_time),
            );
        }
    }
    let serial_us = t0.elapsed().as_secs_f64() * 1e6;

    // Optimized: one shared shape pass per mini-batch, per-mode re-pricing,
    // pruned parallel t_max sweep.
    let t1 = Instant::now();
    let mut fast_objectives = Vec::new();
    for mb in &ordered {
        let shapes = Partitioner::new(&cm, dp_config(&cm, RecomputeMode::None)).shape_pass(mb);
        let fwd = SliceFwdCosts::build(&cm, &shapes);
        for mode in RecomputeMode::ALL {
            let p = Partitioner::new(&cm, dp_config(&cm, mode));
            fast_objectives.push(
                p.partition_with_context(&shapes, &fwd, mb)
                    .map(|r| r.est_iteration_time),
            );
        }
    }
    let parallel_us = t1.elapsed().as_secs_f64() * 1e6;

    for (i, (s, f)) in serial_objectives.iter().zip(&fast_objectives).enumerate() {
        match (s, f) {
            (Some(s), Some(f)) => assert!(
                (s - f).abs() <= 1e-9 * s.abs().max(1.0),
                "{name} case {i}: objective diverged (serial {s}, optimized {f})"
            ),
            (s, f) => assert_eq!(s.is_none(), f.is_none(), "{name} case {i}: feasibility"),
        }
    }

    println!(
        "  {name:>4}: serial {:9.1} ms | optimized {:9.1} ms | {:5.2}x on {} mini-batches",
        serial_us / 1e3,
        parallel_us / 1e3,
        serial_us / parallel_us,
        ordered.len(),
    );
    ModelRun {
        name,
        serial_us,
        parallel_us,
    }
}

fn main() {
    let opts = BenchOpts::default();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples.max(6000));
    println!("planning speed — fig17 workload, 65k-token mini-batches, all recompute modes\n");
    let mut runs = Vec::new();
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(1, 2, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(1, 4, 2)),
    ] {
        let point = Point {
            model,
            num_gpus: 8,
            max_seq_len: 4096,
            gbs_tokens: 65536,
        };
        let minibatches = probe_minibatches(&dataset, &point, 4);
        runs.push(run_model(name, model, parallel, &minibatches));
    }

    let serial_us: f64 = runs.iter().map(|r| r.serial_us).sum();
    let parallel_us: f64 = runs.iter().map(|r| r.parallel_us).sum();
    let speedup = serial_us / parallel_us;
    println!("\n  total: {speedup:.2}x (threads: {})", rayon::current_num_threads());

    let per_model = serde_json::Value::Object(
        runs.iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    serde_json::json!({
                        "serial_us": r.serial_us,
                        "parallel_us": r.parallel_us,
                        "speedup": r.serial_us / r.parallel_us,
                    }),
                )
            })
            .collect(),
    );
    let out = serde_json::Value::Object(vec![
        ("serial_us".to_string(), serde_json::json!(serial_us)),
        ("parallel_us".to_string(), serde_json::json!(parallel_us)),
        ("speedup".to_string(), serde_json::json!(speedup)),
        (
            "threads".to_string(),
            serde_json::json!(rayon::current_num_threads()),
        ),
        ("per_model".to_string(), per_model),
    ]);
    // The canonical artifact at the repo root (what CI trend-tracks), plus
    // a copy under results/ with the other figure outputs.
    match serde_json::to_string_pretty(&out) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_planning.json", &s) {
                eprintln!("warning: could not write BENCH_planning.json: {e}");
            } else {
                println!("  -> BENCH_planning.json");
            }
        }
        Err(e) => eprintln!("warning: could not serialize: {e}"),
    }
    write_json("planning_speed", &out);
}
