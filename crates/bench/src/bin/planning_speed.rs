//! Planning-speed regression bench: serial reference vs optimized hot path.
//!
//! Reuses the Fig. 17 workload (65k-token mini-batches of the FLANv2-like
//! dataset, every §7 recompute mode swept) and times the DP partitioning
//! core — the dominant term in per-iteration planning — two ways:
//!
//! * **serial**: the retained reference path
//!   ([`Partitioner::partition_reference`]): per-mode slice-table rebuild,
//!   full `t_max` candidate sweep, no parallelism, no pruning;
//! * **optimized**: the production path: one mode-independent shape pass
//!   shared across all recompute modes, batched deduplicated cost pricing
//!   (one grid solve per mode against a shared query plan), and the
//!   pruned parallel `t_max` sweep seeded by a golden-section probe.
//!
//! Emits `BENCH_planning.json` with `{serial_us, parallel_us, speedup}`
//! plus per-model breakdowns including **distinct-shape counts** and
//! **grid-query counters** (scalar queries vs batched points/cells), so
//! pricing-layer regressions are visible in the artifact, not just the
//! wall clock. Equivalence of the chosen partitions is checked on every
//! measured mini-batch — the speed-up must never come from choosing
//! different partitions — and any divergence makes the bench exit
//! nonzero after reporting every offending case.

use dynapipe_batcher::{sort_samples, DpConfig, Partitioner, SliceFwdCosts};
use dynapipe_bench::{probe_minibatches, write_json, write_root_artifact, BenchOpts, Point};
use dynapipe_cost::{grid_query_stats, CostModel, GridQueryStats, ProfileOptions};
use dynapipe_data::{Dataset, Sample};
use dynapipe_model::memory::RecomputeMode;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::ops::Range;
use std::time::Instant;

struct ModelRun {
    name: &'static str,
    serial_us: f64,
    parallel_us: f64,
    distinct_shapes: u64,
    serial_queries: GridQueryStats,
    opt_queries: GridQueryStats,
    divergences: usize,
}

/// What each path chose for one (mini-batch, mode) case.
type Outcome = Option<(f64, Vec<Range<usize>>)>;

fn dp_config(cm: &CostModel, mode: RecomputeMode) -> DpConfig {
    let mut cfg = DpConfig::new(cm.min_activation_budget());
    cfg.recompute = mode;
    cfg.max_mb_samples = 128;
    cfg
}

fn run_model(
    name: &'static str,
    model: ModelConfig,
    parallel: ParallelConfig,
    minibatches: &[Vec<Sample>],
) -> ModelRun {
    let hw = HardwareModel::a100_cluster();
    let cm = CostModel::build(hw, model, parallel, &ProfileOptions::default());
    let ordered: Vec<Vec<Sample>> = minibatches
        .iter()
        .map(|mb| {
            let mut s = mb.clone();
            sort_samples(cm.model.arch, &mut s);
            s
        })
        .collect();

    // Serial reference: rebuild the fused slice table per recompute mode,
    // full candidate sweep.
    let stats0 = grid_query_stats();
    let t0 = Instant::now();
    let mut serial_outcomes: Vec<Outcome> = Vec::new();
    for mb in &ordered {
        for mode in RecomputeMode::ALL {
            let p = Partitioner::new(&cm, dp_config(&cm, mode));
            serial_outcomes.push(
                p.partition_reference(mb)
                    .map(|r| (r.est_iteration_time, r.ranges)),
            );
        }
    }
    let serial_us = t0.elapsed().as_secs_f64() * 1e6;
    let stats1 = grid_query_stats();

    // Optimized: one shared shape pass + batched query plan per
    // mini-batch, per-mode re-pricing, pruned parallel t_max sweep.
    let t1 = Instant::now();
    let mut fast_outcomes: Vec<Outcome> = Vec::new();
    let mut distinct_shapes = 0u64;
    for mb in &ordered {
        let shapes = Partitioner::new(&cm, dp_config(&cm, RecomputeMode::None)).shape_pass(mb);
        distinct_shapes += shapes.num_distinct_shapes() as u64;
        let fwd = SliceFwdCosts::build(&cm, &shapes);
        for mode in RecomputeMode::ALL {
            let p = Partitioner::new(&cm, dp_config(&cm, mode));
            fast_outcomes.push(
                p.partition_with_context(&shapes, &fwd, mb)
                    .map(|r| (r.est_iteration_time, r.ranges)),
            );
        }
    }
    let parallel_us = t1.elapsed().as_secs_f64() * 1e6;
    let stats2 = grid_query_stats();

    let mut divergences = 0usize;
    for (i, (s, f)) in serial_outcomes.iter().zip(&fast_outcomes).enumerate() {
        match (s, f) {
            (Some((so, sr)), Some((fo, fr))) => {
                if (so - fo).abs() > 1e-9 * so.abs().max(1.0) || sr != fr {
                    divergences += 1;
                    eprintln!(
                        "DIVERGENCE {name} case {i}: serial obj {so} ({} ranges) vs \
                         optimized obj {fo} ({} ranges)",
                        sr.len(),
                        fr.len()
                    );
                }
            }
            (s, f) => {
                if s.is_none() != f.is_none() {
                    divergences += 1;
                    eprintln!(
                        "DIVERGENCE {name} case {i}: feasibility (serial {}, optimized {})",
                        s.is_some(),
                        f.is_some()
                    );
                }
            }
        }
    }

    println!(
        "  {name:>4}: serial {:9.1} ms | optimized {:9.1} ms | {:5.2}x on {} mini-batches",
        serial_us / 1e3,
        parallel_us / 1e3,
        serial_us / parallel_us,
        ordered.len(),
    );
    let serial_queries = stats1.since(&stats0);
    let opt_queries = stats2.since(&stats1);
    println!(
        "        {} distinct shapes | serial {} scalar queries | optimized {} scalar + {} batched points -> {} cells",
        distinct_shapes,
        serial_queries.scalar,
        opt_queries.scalar,
        opt_queries.batch_points,
        opt_queries.batch_cells,
    );
    ModelRun {
        name,
        serial_us,
        parallel_us,
        distinct_shapes,
        serial_queries,
        opt_queries,
        divergences,
    }
}

fn main() {
    let opts = BenchOpts::default();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples_at_least(6000));
    println!("planning speed — fig17 workload, 65k-token mini-batches, all recompute modes\n");
    let mut runs = Vec::new();
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(1, 2, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(1, 4, 2)),
    ] {
        let point = Point {
            model,
            num_gpus: 8,
            max_seq_len: 4096,
            gbs_tokens: 65536,
        };
        let minibatches = probe_minibatches(&dataset, &point, opts.capped(4, 1));
        runs.push(run_model(name, model, parallel, &minibatches));
    }

    let serial_us: f64 = runs.iter().map(|r| r.serial_us).sum();
    let parallel_us: f64 = runs.iter().map(|r| r.parallel_us).sum();
    let speedup = serial_us / parallel_us;
    println!("\n  total: {speedup:.2}x (threads: {})", rayon::current_num_threads());

    let per_model = serde_json::Value::Object(
        runs.iter()
            .map(|r| {
                let grid_queries = serde_json::json!({
                    "serial_scalar": r.serial_queries.scalar,
                    "optimized_scalar": r.opt_queries.scalar,
                    "optimized_batch_points": r.opt_queries.batch_points,
                    "optimized_batch_cells": r.opt_queries.batch_cells,
                    "optimized_batch_evals": r.opt_queries.batch_evals,
                });
                (
                    r.name.to_string(),
                    serde_json::json!({
                        "serial_us": r.serial_us,
                        "parallel_us": r.parallel_us,
                        "speedup": r.serial_us / r.parallel_us,
                        "distinct_shapes": r.distinct_shapes,
                        "grid_queries": grid_queries,
                    }),
                )
            })
            .collect(),
    );
    let out = serde_json::Value::Object(vec![
        ("serial_us".to_string(), serde_json::json!(serial_us)),
        ("parallel_us".to_string(), serde_json::json!(parallel_us)),
        ("speedup".to_string(), serde_json::json!(speedup)),
        (
            "threads".to_string(),
            serde_json::json!(rayon::current_num_threads()),
        ),
        ("per_model".to_string(), per_model),
    ]);
    // The canonical artifact at the repo root (what CI trend-tracks), plus
    // a copy under results/ with the other figure outputs.
    write_root_artifact(&opts, "BENCH_planning.json", &out);
    write_json("planning_speed", &out);

    // Fail loudly: a silent partition divergence would let a broken
    // optimization masquerade as a speed-up.
    let divergences: usize = runs.iter().map(|r| r.divergences).sum();
    if divergences > 0 {
        eprintln!("error: {divergences} case(s) diverged from partition_reference");
        std::process::exit(1);
    }
}
