//! Fig. 7: per-iteration makespan of 1F1B vs the adaptive schedule under
//! increasing execution-time variation, for 2/4/8/16 pipeline stages.
//!
//! Micro-batches are uniform at planning time; execution times are
//! disturbed by zero-mean Gaussian noise of standard deviation σ× the mean.
//! Makespans are normalized over the no-variation case, exactly as in the
//! paper's figure.

use dynapipe_bench::write_json;
use dynapipe_schedule::{adaptive_schedule, evaluate_schedule, one_f_one_b, ScheduleInput};

fn gaussian(state: &mut u64) -> f64 {
    let mut next = || {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64).max(f64::EPSILON)
    };
    let u1 = next();
    let u2 = next();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn noised(input: &ScheduleInput, sigma: f64, seed: u64) -> ScheduleInput {
    let mut out = input.clone();
    let mut state = seed;
    for mb in 0..out.num_micro_batches() {
        for j in 0..out.num_stages() {
            let f = (1.0 + sigma * gaussian(&mut state)).max(0.02);
            out.fwd[mb][j] *= f;
            out.bwd[mb][j] *= f;
        }
    }
    out
}

fn main() {
    println!("Fig. 7 — normalized makespan vs execution-time variation\n");
    let m = 16;
    let trials = 24;
    let sigmas = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let mut out = Vec::new();
    println!(
        "{:>7} | {:>6} | {:>10} | {:>10}",
        "stages", "sigma", "1F1B", "adaptive"
    );
    for stages in [2usize, 4, 8, 16] {
        let input = ScheduleInput::uniform(m, stages, 100.0, 200.0, 1);
        let s1 = one_f_one_b(m, stages);
        let s2 = adaptive_schedule(&input);
        let clean1 = evaluate_schedule(&s1, &input).unwrap().times.makespan;
        let clean2 = evaluate_schedule(&s2, &input).unwrap().times.makespan;
        for &sigma in &sigmas {
            let mut n1 = 0.0;
            let mut n2 = 0.0;
            for t in 0..trials {
                let actual = noised(&input, sigma, 0xF1607 + t * 7919 + stages as u64);
                n1 += evaluate_schedule(&s1, &actual).unwrap().times.makespan / clean1;
                n2 += evaluate_schedule(&s2, &actual).unwrap().times.makespan / clean2;
            }
            n1 /= trials as f64;
            n2 /= trials as f64;
            println!("{stages:>7} | {sigma:>6.1} | {n1:>10.3} | {n2:>10.3}");
            out.push(serde_json::json!({
                "stages": stages, "sigma": sigma,
                "onefb": n1, "adaptive": n2,
            }));
        }
    }
    println!(
        "\nShape check (paper Fig. 7): normalized makespan grows with σ, faster\n\
         with more stages, and the adaptive schedule stays below 1F1B throughout."
    );
    write_json("fig07_noise_robustness", &out);
}
