//! Fig. 13 (+ Table 1): training throughput vs maximum sequence length.
//!
//! For each model/cluster size of Table 1 and each maximum sequence length,
//! evaluates three systems exactly as the paper does:
//!
//! * **DynaPipe** — grid-searched parallelism, dynamic micro-batching,
//!   memory-aware adaptive schedule;
//! * **MLM+DS** — packing baseline with its own grid-searched parallelism
//!   and micro-batch size;
//! * **MLM+DS (C)** — the packing baseline pinned to DynaPipe's chosen
//!   parallelism.
//!
//! By default only the single-node rows (4 and 8 GPUs — Fig. 13 a/b/e/f,
//! matching the paper's artifact) run; set `DYNAPIPE_BENCH_FULL=1` for all
//! cluster sizes.

use dynapipe_bench::{eval_dynapipe, eval_packing, fmt_tps, write_json, BenchOpts, Point};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig};

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();

    println!("Table 1 — model configurations");
    for gpus in opts.cluster_sizes() {
        let g = ModelConfig::gpt_for_gpus(gpus).unwrap();
        let t = ModelConfig::t5_for_gpus(gpus).unwrap();
        println!(
            "  {gpus:>2} GPUs: GPT {:5.2}B ({} layers, d={}) | T5 {:5.2}B ({}+{} layers)",
            g.total_params_b(),
            g.num_layers,
            g.hidden_dim,
            t.total_params_b(),
            t.num_layers,
            t.num_layers
        );
    }
    println!();

    for arch_t5 in [false, true] {
        for gpus in opts.cluster_sizes() {
            let model = if arch_t5 {
                ModelConfig::t5_for_gpus(gpus).unwrap()
            } else {
                ModelConfig::gpt_for_gpus(gpus).unwrap()
            };
            let name = if arch_t5 { "T5" } else { "GPT" };
            let msls: Vec<usize> = if arch_t5 && gpus < 32 {
                vec![512, 1024, 2048, 4096]
            } else {
                vec![512, 1024, 2048, 4096, 8192]
            };
            println!(
                "=== Fig. 13 — {name} ({:.2}B) on {gpus} GPUs, GBS 65536 tokens ===",
                model.total_params_b()
            );
            println!(
                "{:>8} | {:>10} | {:>10} | {:>10} | {:>14}",
                "max len", "MLM+DS(C)", "MLM+DS", "DynaPipe", "dyn parallel"
            );
            for msl in msls {
                let point = Point {
                    model,
                    num_gpus: gpus,
                    max_seq_len: msl,
                    gbs_tokens: 65536,
                };
                let dyna = eval_dynapipe(&hw, &dataset, &point, &opts);
                let (dyn_tps, dyn_par) = match &dyna {
                    Some((r, p)) => (Some(r.throughput), Some(*p)),
                    None => (None, None),
                };
                let mlm = eval_packing(&hw, &dataset, &point, &opts, None);
                let mlm_c =
                    dyn_par.and_then(|p| eval_packing(&hw, &dataset, &point, &opts, Some(p)));
                println!(
                    "{msl:>8} | {} | {} | {} | {:>14}",
                    fmt_tps(mlm_c.as_ref().map(|r| r.throughput)),
                    fmt_tps(mlm.as_ref().map(|r| r.throughput)),
                    fmt_tps(dyn_tps),
                    dyn_par.map(|p| p.to_string()).unwrap_or("-".into())
                );
                out.push(serde_json::json!({
                    "model": name, "gpus": gpus, "max_seq_len": msl,
                    "dynapipe": dyna.as_ref().map(|(r, _)| r),
                    "mlm_ds": mlm,
                    "mlm_ds_c": mlm_c,
                }));
            }
            println!();
        }
    }
    println!(
        "Shape check (paper Fig. 13): MLM+DS throughput decays quickly with the\n\
         maximum sequence length; DynaPipe decays slowly (driven by the average\n\
         length) and keeps running at lengths where baselines go OOM."
    );
    write_json("fig13_seqlen_scaling", &out);
}
