//! Fig. 3: computation time of a single T5-11B Transformer encoder layer
//! vs sequence length — super-linear growth motivates avoiding long packed
//! sequences.

use dynapipe_bench::write_json;
use dynapipe_model::hardware::LayerKind;
use dynapipe_model::{HardwareModel, MicroBatchShape, ModelConfig};

fn main() {
    println!("Fig. 3 — single T5-11B encoder layer forward time on one A100\n");
    let hw = HardwareModel::a100_cluster();
    let model = ModelConfig::t5_11b();
    let mut rows = Vec::new();
    println!(
        "{:>8} | {:>12} | {:>14} | growth",
        "seq len", "time (ms)", "us per token"
    );
    let mut prev: Option<f64> = None;
    for s in [128usize, 256, 512, 1024, 2048, 4096, 8192] {
        let shape = MicroBatchShape::t5(1, s, 1);
        let t = hw.layer_time_fwd(&model, LayerKind::T5Encoder, &shape, 1);
        let growth = prev.map(|p| format!("{:5.2}x", t / p)).unwrap_or_default();
        println!(
            "{s:>8} | {:>12.2} | {:>14.3} | {growth}",
            t / 1e3,
            t / s as f64
        );
        rows.push(serde_json::json!({ "seq_len": s, "time_ms": t / 1e3 }));
        prev = Some(t);
    }
    println!(
        "\nShape check: every doubling beyond 1024 should grow by >2x (the\n\
         quadratic attention term dominating), matching the paper's Fig. 3."
    );
    write_json("fig03_layer_time", &rows);
}
