//! Fig. 15: padding-efficiency case study — GPT 6.7B and T5 11B on 8 GPUs,
//! across maximum sequence lengths and global batch sizes, comparing
//! MLM+DS packing against DynaPipe (with per-side encoder/decoder
//! efficiency for T5).

use dynapipe_bench::{eval_dynapipe, eval_packing, write_json, BenchOpts, Point};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig};

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();

    // (a) GPT 6.7B on 8 GPUs.
    println!("=== Fig. 15a — GPT (6.7B) on 8 GPUs: overall padding efficiency ===");
    println!("{:>10} | {:>8} | {:>8}", "sweep", "MLM+DS", "DynaPipe");
    let gpt = ModelConfig::gpt_6_7b();
    for msl in [512usize, 1024, 2048, 4096, 8192] {
        let point = Point {
            model: gpt,
            num_gpus: 8,
            max_seq_len: msl,
            gbs_tokens: 65536,
        };
        let (p, d) = both(&hw, &dataset, &point, &opts);
        println!(
            "msl {msl:>6} | {:>8} | {:>8}",
            fmt(p.map(|x| x.0)),
            fmt(d.map(|x| x.0))
        );
        out.push(serde_json::json!({"model":"GPT","sweep":"msl","value":msl,
            "mlm_ds": p, "dynapipe": d}));
    }
    for gbs in [16384usize, 32768, 65536, 131072] {
        let point = Point {
            model: gpt,
            num_gpus: 8,
            max_seq_len: 2048,
            gbs_tokens: gbs,
        };
        let (p, d) = both(&hw, &dataset, &point, &opts);
        println!(
            "gbs {gbs:>6} | {:>8} | {:>8}",
            fmt(p.map(|x| x.0)),
            fmt(d.map(|x| x.0))
        );
        out.push(serde_json::json!({"model":"GPT","sweep":"gbs","value":gbs,
            "mlm_ds": p, "dynapipe": d}));
    }

    // (b) T5 11B on 8 GPUs, encoder/decoder separately.
    println!("\n=== Fig. 15b — T5 (11B) on 8 GPUs: encoder / decoder efficiency ===");
    println!(
        "{:>10} | {:>15} | {:>15}",
        "sweep", "MLM+DS enc/dec", "DynaPipe enc/dec"
    );
    let t5 = ModelConfig::t5_11b();
    for msl in [512usize, 1024, 2048, 4096] {
        let point = Point {
            model: t5,
            num_gpus: 8,
            max_seq_len: msl,
            gbs_tokens: 65536,
        };
        let (p, d) = both(&hw, &dataset, &point, &opts);
        println!(
            "msl {msl:>6} | {:>15} | {:>15}",
            fmt2(p.map(|x| (x.1, x.2))),
            fmt2(d.map(|x| (x.1, x.2)))
        );
        out.push(serde_json::json!({"model":"T5","sweep":"msl","value":msl,
            "mlm_ds": p, "dynapipe": d}));
    }
    for gbs in [16384usize, 32768, 65536, 131072] {
        let point = Point {
            model: t5,
            num_gpus: 8,
            max_seq_len: 2048,
            gbs_tokens: gbs,
        };
        let (p, d) = both(&hw, &dataset, &point, &opts);
        println!(
            "gbs {gbs:>6} | {:>15} | {:>15}",
            fmt2(p.map(|x| (x.1, x.2))),
            fmt2(d.map(|x| (x.1, x.2)))
        );
        out.push(serde_json::json!({"model":"T5","sweep":"gbs","value":gbs,
            "mlm_ds": p, "dynapipe": d}));
    }
    println!(
        "\nShape check (paper Fig. 15): both systems pad little overall for GPT;\n\
         T5 packing is lopsided (encoder ≈0.9, decoder ≈0.35) while DynaPipe\n\
         balances the two sides."
    );
    write_json("fig15_padding_efficiency", &out);
}

type Eff = (f64, f64, f64); // (overall, encoder, decoder)

fn both(
    hw: &HardwareModel,
    dataset: &Dataset,
    point: &Point,
    opts: &BenchOpts,
) -> (Option<Eff>, Option<Eff>) {
    let dyna = eval_dynapipe(hw, dataset, point, opts);
    let packing = match &dyna {
        Some((_, par)) => eval_packing(hw, dataset, point, opts, Some(*par))
            .or_else(|| eval_packing(hw, dataset, point, opts, None)),
        None => eval_packing(hw, dataset, point, opts, None),
    };
    (
        packing.map(|r| {
            (
                r.padding_efficiency,
                r.encoder_efficiency,
                r.decoder_efficiency,
            )
        }),
        dyna.map(|(r, _)| {
            (
                r.padding_efficiency,
                r.encoder_efficiency,
                r.decoder_efficiency,
            )
        }),
    )
}

fn fmt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.3}")).unwrap_or("OOM".into())
}

fn fmt2(x: Option<(f64, f64)>) -> String {
    x.map(|(a, b)| format!("{a:.3}/{b:.3}"))
        .unwrap_or("OOM".into())
}
