//! Fig. 14: training throughput vs global batch size (max seq len 2048).

use dynapipe_bench::{eval_dynapipe, eval_packing, fmt_tps, write_json, BenchOpts, Point};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig};

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
    let mut out = Vec::new();
    for arch_t5 in [false, true] {
        for gpus in opts.cluster_sizes() {
            let model = if arch_t5 {
                ModelConfig::t5_for_gpus(gpus).unwrap()
            } else {
                ModelConfig::gpt_for_gpus(gpus).unwrap()
            };
            let name = if arch_t5 { "T5" } else { "GPT" };
            println!(
                "=== Fig. 14 — {name} ({:.2}B) on {gpus} GPUs, max seq len 2048 ===",
                model.total_params_b()
            );
            println!(
                "{:>8} | {:>10} | {:>10} | {:>10} | {:>14}",
                "GBS", "MLM+DS(C)", "MLM+DS", "DynaPipe", "dyn parallel"
            );
            for gbs in [16384usize, 32768, 65536, 131072] {
                let point = Point {
                    model,
                    num_gpus: gpus,
                    max_seq_len: 2048,
                    gbs_tokens: gbs,
                };
                let dyna = eval_dynapipe(&hw, &dataset, &point, &opts);
                let (dyn_tps, dyn_par) = match &dyna {
                    Some((r, p)) => (Some(r.throughput), Some(*p)),
                    None => (None, None),
                };
                let mlm = eval_packing(&hw, &dataset, &point, &opts, None);
                let mlm_c =
                    dyn_par.and_then(|p| eval_packing(&hw, &dataset, &point, &opts, Some(p)));
                println!(
                    "{gbs:>8} | {} | {} | {} | {:>14}",
                    fmt_tps(mlm_c.as_ref().map(|r| r.throughput)),
                    fmt_tps(mlm.as_ref().map(|r| r.throughput)),
                    fmt_tps(dyn_tps),
                    dyn_par.map(|p| p.to_string()).unwrap_or("-".into())
                );
                out.push(serde_json::json!({
                    "model": name, "gpus": gpus, "gbs": gbs,
                    "dynapipe": dyna.as_ref().map(|(r, _)| r),
                    "mlm_ds": mlm,
                    "mlm_ds_c": mlm_c,
                }));
            }
            println!();
        }
    }
    println!(
        "Shape check (paper Fig. 14): throughput grows with global batch size for\n\
         both systems (smaller pipeline bubble, less frequent gradient sync), and\n\
         DynaPipe grows faster thanks to richer micro-batch-splitting choices."
    );
    write_json("fig14_gbs_scaling", &out);
}
