//! Fig. 17: execution-planning time.
//!
//! (a) Distribution of single-thread plan-generation time per iteration as
//!     the global batch size grows, for GPT and T5.
//! (b) Ratio of planning time to simulated iteration time — the number of
//!     CPU cores needed to fully overlap planning with training.
//!
//! Also demonstrates the worker-pool planner (§3) pushing plans through the
//! instruction store.

use dynapipe_bench::{probe_minibatches, run_point, write_json, BenchOpts, Point};
use dynapipe_core::{
    parallel::generate_plans_parallel, DynaPipePlanner, InstructionStore, PlannerConfig,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::Dataset;
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use std::sync::Arc;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let opts = BenchOpts::default();
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples_at_least(6000));
    let mut out = Vec::new();
    println!("Fig. 17 — execution planning time\n");
    println!(
        "{:>5} {:>8} | {:>9} {:>9} {:>9} | {:>10} | {:>8}",
        "model", "GBS", "p10 (ms)", "p50 (ms)", "p90 (ms)", "iter (ms)", "ratio"
    );
    for (name, model, parallel) in [
        ("GPT", ModelConfig::gpt_6_7b(), ParallelConfig::new(1, 2, 4)),
        ("T5", ModelConfig::t5_11b(), ParallelConfig::new(1, 4, 2)),
    ] {
        let cm = Arc::new(CostModel::build(
            hw.clone(),
            model,
            parallel,
            &ProfileOptions::default(),
        ));
        for gbs in [16384usize, 32768, 65536, 131072] {
            let point = Point {
                model,
                num_gpus: 8,
                max_seq_len: 4096,
                gbs_tokens: gbs,
            };
            let planner = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());
            // Plan a batch of iterations, collecting single-thread times.
            let minibatches = probe_minibatches(&dataset, &point, 8);
            let mut times: Vec<f64> = minibatches
                .iter()
                .filter_map(|mb| planner.plan_iteration(mb).ok())
                .map(|p| p.planning_time_us)
                .collect();
            times.sort_by(f64::total_cmp);
            // Measure the simulated iteration time for the ratio.
            let report = run_point(&planner, &dataset, &point, &opts);
            let iter_ms = if report.records.is_empty() {
                f64::NAN
            } else {
                report.records.iter().map(|r| r.measured_time).sum::<f64>()
                    / report.records.len() as f64
                    / 1e3
            };
            let p50 = percentile(&times, 0.5) / 1e3;
            let ratio = p50 / iter_ms;
            println!(
                "{name:>5} {gbs:>8} | {:>9.1} {:>9.1} {:>9.1} | {iter_ms:>10.1} | {ratio:>8.4}",
                percentile(&times, 0.1) / 1e3,
                p50,
                percentile(&times, 0.9) / 1e3,
            );
            out.push(serde_json::json!({
                "model": name, "gbs": gbs,
                "planning_ms": times.iter().map(|t| t / 1e3).collect::<Vec<_>>(),
                "iteration_ms": iter_ms,
                "ratio": ratio,
            }));
        }
    }

    // Parallel planning demonstration (planner worker pool + store).
    println!("\nworker-pool planning (GBS 65536, GPT):");
    let cm = Arc::new(CostModel::build(
        hw.clone(),
        ModelConfig::gpt_6_7b(),
        ParallelConfig::new(1, 2, 4),
        &ProfileOptions::default(),
    ));
    let planner = Arc::new(DynaPipePlanner::new(cm, PlannerConfig::default()));
    let point = Point {
        model: ModelConfig::gpt_6_7b(),
        num_gpus: 8,
        max_seq_len: 4096,
        gbs_tokens: 65536,
    };
    let minibatches = probe_minibatches(&dataset, &point, 8);
    for workers in [1usize, 4] {
        let store = InstructionStore::new();
        let stats = generate_plans_parallel(
            planner.clone(),
            &minibatches,
            workers,
            &store,
            dynapipe_core::PlanCodec::Binary,
        );
        println!(
            "  {workers} worker(s): wall {:8.1} ms, cpu {:8.1} ms, effective speedup {:.2}x, {} plans stored",
            stats.wall_us / 1e3,
            stats.total_cpu_us() / 1e3,
            stats.speedup(),
            store.len()
        );
    }
    println!(
        "\nShape check (paper Fig. 17): planning time grows with GBS (the DP\n\
         dominates); the planning/iteration ratio stays far below 1, so planning\n\
         fully overlaps with training. Note the paper's planner is ~10K LoC of\n\
         Python with a 5 µs t_max resolution (ratios up to 12.9); this compiled\n\
         reproduction with a capped candidate set plans ~3 orders of magnitude\n\
         faster, so its ratios sit well below one even single-threaded."
    );
    write_json("fig17_planning_time", &out);
}
