//! Run every figure-regeneration binary in sequence — the reproduction's
//! analogue of the paper artifact's `run_all.sh`.
//!
//! Results land in `results/*.json`; console output shows each figure's
//! table and its expected-shape note.

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig01_dataset",
    "fig03_layer_time",
    "fig04_packing_vs_dynamic",
    "fig05_microbatching_sweep",
    "fig07_noise_robustness",
    "fig13_seqlen_scaling",
    "fig14_gbs_scaling",
    "fig15_padding_efficiency",
    "fig16_ablation",
    "fig17_planning_time",
    "fig18_cost_model_accuracy",
    "ablation_recompute",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    let mut failures = Vec::new();
    for name in FIGURES {
        println!("\n================ {name} ================\n");
        let status = Command::new(dir.join(name)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("could not launch {name}: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n================ summary ================");
    if failures.is_empty() {
        println!(
            "all {} figure binaries completed; results in results/",
            FIGURES.len()
        );
    } else {
        println!("failed: {failures:?}");
        std::process::exit(1);
    }
}
