//! Run every figure-regeneration binary in sequence — the reproduction's
//! analogue of the paper artifact's `run_all.sh`.
//!
//! Results land in `results/*.json`; console output shows each figure's
//! table and its expected-shape note.
//!
//! A full (default) sweep deliberately regenerates the trend-tracked
//! root artifacts too (`BENCH_planning.json`, `BENCH_runtime.json`) —
//! running a bin *is* regenerating its artifact, same as invoking it
//! directly, so only run the full sweep on the machine class whose
//! numbers you want recorded.
//!
//! `--smoke` runs one capped iteration of every bench bin (tiny dataset,
//! one simulated iteration, workload floors dropped via
//! `DYNAPIPE_BENCH_SMOKE=1`) so CI can catch bin bit-rot — a binary that
//! panics, diverges from its reference, or stops emitting its artifact —
//! in minutes instead of a full regeneration run. Divergence checks
//! (`planning_speed`, `fig17_planahead`) still run and still fail the
//! sweep — including `fig17_planahead`'s store-backed arms across all
//! three wire codecs (`json`/`binary`/`flat`, the last executing
//! engines straight over the wire bytes) and `fig09_cluster`'s
//! topology × codec matrix with its flat decode/bytes gates, so
//! plan-serialization bit-rot in any codec fails CI; smoke runs never
//! touch the root artifacts. After the figures, the sweep round-trips
//! `fig09_cluster`'s exported span trace through `trace_report`
//! (parse → validate → reconcile → critical path), so a trace that
//! stops reconciling with the counters also fails the sweep.

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig01_dataset",
    "fig03_layer_time",
    "fig04_packing_vs_dynamic",
    "fig05_microbatching_sweep",
    "fig07_noise_robustness",
    "fig13_seqlen_scaling",
    "fig14_gbs_scaling",
    "fig15_padding_efficiency",
    "fig16_ablation",
    "fig09_cluster",
    "fig17_planning_time",
    "fig17_planahead",
    "fig18_cost_model_accuracy",
    "ablation_recompute",
    "planning_speed",
];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    let mut failures = Vec::new();
    if smoke {
        println!("run_all --smoke: one capped iteration per bin\n");
    }
    // The static-analysis gate runs first: if the determinism contract
    // is broken at the source level, figure regeneration is meaningless.
    // The lint binary is a workspace sibling, built into the same dir.
    println!("================ dynapipe-lint ================\n");
    match Command::new(dir.join("dynapipe-lint")).status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("dynapipe-lint exited with {s}");
            failures.push("dynapipe-lint");
        }
        Err(e) => {
            eprintln!("could not launch dynapipe-lint: {e}");
            failures.push("dynapipe-lint");
        }
    }
    for name in FIGURES {
        println!("\n================ {name} ================\n");
        let mut cmd = Command::new(dir.join(name));
        if smoke {
            cmd.env("DYNAPIPE_BENCH_SMOKE", "1")
                .env("DYNAPIPE_BENCH_SAMPLES", "400")
                .env("DYNAPIPE_BENCH_ITERS", "1")
                .env("DYNAPIPE_BENCH_PROBES", "1");
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("could not launch {name}: {e}");
                failures.push(*name);
            }
        }
    }
    // Trace round-trip: fig09_cluster exported its trace arm to
    // results/TRACE_cluster.json; `trace_report` re-parses it, replays
    // validation + counter reconciliation on the file (not the
    // in-memory copy), and recomputes the critical path from the spans
    // — exiting nonzero on malformed JSON, a reconciliation failure, or
    // a critical path that disagrees with the run's exposed-planning
    // accounting.
    println!("\n================ trace_report ================\n");
    match Command::new(dir.join("trace_report"))
        .arg("results/TRACE_cluster.json")
        .status()
    {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("trace_report exited with {s}");
            failures.push("trace_report");
        }
        Err(e) => {
            eprintln!("could not launch trace_report: {e}");
            failures.push("trace_report");
        }
    }
    println!("\n================ summary ================");
    if failures.is_empty() {
        println!(
            "all {} figure binaries completed; results in results/",
            FIGURES.len()
        );
    } else {
        println!("failed: {failures:?}");
        std::process::exit(1);
    }
}
