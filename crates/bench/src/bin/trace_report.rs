//! `trace_report` — audit a trace file and compute its critical path.
//!
//! Reads a `dynapipe_trace::Trace` JSON export (default
//! `results/TRACE_cluster.json`, or the path given as the first
//! argument), then:
//!
//! 1. **validates** structural well-formedness (closed intervals,
//!    monotone `seq`, generation arithmetic),
//! 2. **reconciles** every span payload total against the counter
//!    ledger embedded in `meta` (byte sums, span counts, bitwise
//!    exposed-µs ledgers),
//! 3. rebuilds the **end-to-end critical path** from the spans alone —
//!    per iteration, the Sim-domain execution extent plus the exposed
//!    distribution latency — and checks it against the run's own
//!    `wall_us` / `exposed_us` accounting,
//! 4. prints the per-iteration breakdown (which replica bounded the
//!    sync, which host's plan availability bounded the start) and the
//!    per-link occupancy table.
//!
//! Exit codes: 1 unreadable/malformed file, 2 validation failure,
//! 3 reconciliation failure, 4 critical-path disagreement. `run_all
//! --smoke` round-trips the cluster bench's trace through this binary,
//! so a divergence fails the tier-1 suite.

use dynapipe_trace::{ClockDomain, Span, SpanKind, Trace};
use std::collections::BTreeMap;

/// Relative tolerance for timeline identities that cross a `.max(0.0)`
/// clamp (everything else is held bitwise).
const REL_TOL: f64 = 1e-6;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Per-iteration rollup rebuilt from the spans.
#[derive(Default, Clone)]
struct IterRow {
    /// Sim extent: first replica start → sync end (== simulated time).
    sim_us: f64,
    /// Replica whose `IterExec` finished last (bounds the sync).
    bound_replica: i64,
    /// Sim end of the iteration (`IterSync.end_us`).
    sim_end: f64,
    /// Exposed distribution latency charged to this iteration.
    exposed_us: f64,
    /// Host whose plan became available last (bounds the start), -1
    /// when nothing was exposed per-host.
    bound_host: i64,
    /// Engine-level ops executed (Sim `EngineOp` spans).
    ops: usize,
}

/// Per-directed-link rollup of all transfer spans.
#[derive(Default, Clone)]
struct LinkRow {
    blobs: u64,
    bytes: u64,
    /// Σ time actually on the wire (interval minus FIFO queue wait).
    busy_us: f64,
    /// Σ FIFO queue wait behind earlier blobs on the same link.
    wait_us: f64,
    first_start: f64,
    last_end: f64,
}

fn fail(code: i32, msg: &str) -> ! {
    eprintln!("trace_report: {msg}");
    std::process::exit(code);
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/TRACE_cluster.json".to_string());
    println!("trace_report: auditing {path}");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(1, &format!("cannot read {path}: {e}")),
    };
    let trace: Trace = match serde_json::from_str(&text) {
        Ok(t) => t,
        Err(e) => fail(1, &format!("malformed trace JSON in {path}: {e}")),
    };
    let m = &trace.meta;
    println!(
        "  run: {} [{} codec={} placement={}] {} iterations, {} spans ({} sim / {} host)",
        m.label,
        if m.topology.is_empty() { "single-host" } else { &m.topology },
        if m.codec.is_empty() { "-" } else { &m.codec },
        if m.placement.is_empty() { "-" } else { &m.placement },
        m.iterations,
        trace.spans.len(),
        trace.counters.sim_spans,
        trace.counters.host_spans,
    );

    if let Err(e) = trace.validate() {
        fail(2, &format!("validation failed: {e}"));
    }
    println!("  validate: ok");
    if let Err(e) = trace.reconcile() {
        fail(3, &format!("reconciliation failed: {e}"));
    }
    println!("  reconcile: ok (bytes, counts and exposed ledgers match the counters)");

    // --- Per-iteration rebuild ------------------------------------------
    let mut iters: BTreeMap<i64, IterRow> = BTreeMap::new();
    for s in &trace.spans {
        if s.iteration < 0 {
            continue;
        }
        let row = iters.entry(s.iteration).or_default();
        match (s.domain, s.kind) {
            (ClockDomain::Sim, SpanKind::IterExec) => {
                if s.end_us >= row.sim_end {
                    row.bound_replica = s.lane;
                }
            }
            (ClockDomain::Sim, SpanKind::IterSync) => {
                row.sim_end = s.end_us;
            }
            (ClockDomain::Sim, SpanKind::EngineOp) => row.ops += 1,
            (ClockDomain::Host, SpanKind::ExposedPlanning) => row.exposed_us += s.wait_us,
            (ClockDomain::Host, SpanKind::ExposedWait) => {
                // The host whose plan copy became available last bounds
                // the iteration start on the hybrid timeline.
                if row.bound_host < 0
                    || s.end_us
                        > iter_wait_end(&trace.spans, s.iteration, row.bound_host)
                {
                    row.bound_host = s.lane;
                }
            }
            _ => {}
        }
    }
    // Sim extents need the iteration's own start (the previous
    // iteration's sim end), walked in order.
    let mut sim_cursor = 0.0f64;
    let mut sim_total_end = 0.0f64;
    for row in iters.values_mut() {
        row.sim_us = row.sim_end - sim_cursor;
        sim_cursor = row.sim_end;
        sim_total_end = row.sim_end;
    }

    let executed = iters.len() as u64;
    if executed != m.iterations {
        fail(
            4,
            &format!(
                "trace covers {executed} iterations, run executed {}",
                m.iterations
            ),
        );
    }
    if m.iterations > 0 && sim_total_end.to_bits() != m.exec_sim_us.to_bits() {
        fail(
            4,
            &format!(
                "Sim timeline ends at {sim_total_end} µs, counters say exec_sim_us = {} \
                 (must match bitwise: both are the same accumulation)",
                m.exec_sim_us
            ),
        );
    }

    // --- Critical path ---------------------------------------------------
    // Every iteration contributes its simulated extent; distribution
    // latency only appears where the timeline could not hide it.
    let exposed_total: f64 = trace.ledger_us(SpanKind::ExposedPlanning);
    let critical_path = sim_total_end + exposed_total;
    if m.iterations > 0 && !rel_close(critical_path, m.wall_us) {
        fail(
            4,
            &format!(
                "critical path {critical_path} µs (exec {sim_total_end} + exposed \
                 {exposed_total}) disagrees with wall_us {} beyond {REL_TOL:e}",
                m.wall_us
            ),
        );
    }
    println!(
        "  critical path: {:.1} µs = exec {:.1} µs + exposed planning {:.1} µs ({:.2}% exposed)",
        critical_path,
        sim_total_end,
        exposed_total,
        if critical_path > 0.0 {
            100.0 * exposed_total / critical_path
        } else {
            0.0
        }
    );

    // --- Per-iteration breakdown (capped for readability) ----------------
    let cap = 12usize;
    println!("  per-iteration (first {cap}):");
    println!("    iter       sim_us  bound_replica   exposed_us  bound_host   ops");
    for (it, row) in iters.iter().take(cap) {
        println!(
            "    {it:>4} {:>12.1} {:>14} {:>12.1} {:>11} {:>5}",
            row.sim_us,
            row.bound_replica,
            row.exposed_us,
            if row.bound_host < 0 {
                "-".to_string()
            } else {
                row.bound_host.to_string()
            },
            row.ops,
        );
    }
    if iters.len() > cap {
        println!("    ... {} more", iters.len() - cap);
    }

    // --- Per-link occupancy ----------------------------------------------
    let mut links: BTreeMap<(i64, i64), LinkRow> = BTreeMap::new();
    for s in &trace.spans {
        let is_link = matches!(
            s.kind,
            SpanKind::LinkPush | SpanKind::LinkFetch | SpanKind::LinkRestore
        );
        if !is_link {
            continue;
        }
        let row = links.entry((s.src, s.dst)).or_insert(LinkRow {
            first_start: f64::INFINITY,
            last_end: f64::NEG_INFINITY,
            ..LinkRow::default()
        });
        row.blobs += 1;
        row.bytes += s.bytes;
        row.busy_us += (s.end_us - s.start_us) - s.wait_us;
        row.wait_us += s.wait_us;
        row.first_start = row.first_start.min(s.start_us);
        row.last_end = row.last_end.max(s.end_us);
    }
    if !links.is_empty() {
        println!("  per-link occupancy:");
        println!("    src->dst   blobs        bytes      busy_us      wait_us     idle_us");
        for ((src, dst), row) in &links {
            let extent = (row.last_end - row.first_start).max(0.0);
            let idle = (extent - row.busy_us - row.wait_us).max(0.0);
            println!(
                "    {src:>3}->{dst:<3} {:>7} {:>12} {:>12.1} {:>12.1} {:>11.1}",
                row.blobs, row.bytes, row.busy_us, row.wait_us, idle
            );
        }
    }
    println!("trace_report: ok");
}

/// End of the recorded `ExposedWait` for (iteration, host-lane), or
/// -inf when that host recorded none.
fn iter_wait_end(spans: &[Span], iteration: i64, lane: i64) -> f64 {
    spans
        .iter()
        .filter(|s| {
            s.kind == SpanKind::ExposedWait && s.iteration == iteration && s.lane == lane
        })
        .map(|s| s.end_us)
        .fold(f64::NEG_INFINITY, f64::max)
}
