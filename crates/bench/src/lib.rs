//! Shared harness for the figure-regeneration binaries.
//!
//! Each `figNN_*` binary reproduces one table/figure of the paper on the
//! simulated cluster. This library centralizes the experiment mechanics:
//! evaluated systems (DynaPipe, MLM+DS packing with its own grid search,
//! MLM+DS (C) on DynaPipe's parallelism, token-based micro-batching),
//! per-point grid searches, environment-variable knobs, and JSON result
//! output under `results/`.
//!
//! Knobs (environment variables):
//!
//! * `DYNAPIPE_BENCH_SAMPLES` — dataset size per point (default 3000).
//! * `DYNAPIPE_BENCH_ITERS` — simulated iterations per point (default 4).
//! * `DYNAPIPE_BENCH_FULL=1` — run all cluster sizes {4, 8, 16, 32} for
//!   Figs. 13/14 instead of the single-node {4, 8} default (mirroring the
//!   paper's artifact, where one p4d node regenerates Fig. 13 (a)(b)(e)(f)).
//! * `DYNAPIPE_BENCH_SMOKE=1` — smoke mode: bins drop their workload
//!   floors (dataset minimums, fixed probe counts) so a capped
//!   one-iteration pass finishes quickly. Set by `run_all --smoke`, which
//!   runs every bench binary this way to catch bin bit-rot cheaply.

use dynapipe_batcher::OrderingStrategy;
use dynapipe_core::{
    driver::simulate_iteration, run_training, BaselineKind, BaselinePlanner, DynaPipePlanner,
    IterationPlanner, PlannerConfig, RunConfig, RunReport,
};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig, GlobalBatchIter, Sample};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};
use dynapipe_sim::AllocatorMode;
use serde::Serialize;
use std::sync::Arc;

/// Harness options, read from the environment with sane defaults.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Samples in the synthetic dataset per experiment point.
    pub dataset_samples: usize,
    /// Simulated training iterations per point.
    pub iters: usize,
    /// Mini-batches used to score grid-search candidates.
    pub probes: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Include multi-node cluster sizes (16, 32 GPUs).
    pub full: bool,
    /// Smoke mode: minimal workloads, used by `run_all --smoke`.
    pub smoke: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        let env_usize = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        BenchOpts {
            dataset_samples: env_usize("DYNAPIPE_BENCH_SAMPLES", 3000),
            iters: env_usize("DYNAPIPE_BENCH_ITERS", 4),
            probes: env_usize("DYNAPIPE_BENCH_PROBES", 1),
            seed: 20240422,
            full: std::env::var("DYNAPIPE_BENCH_FULL")
                .map(|v| v == "1")
                .unwrap_or(false),
            smoke: std::env::var("DYNAPIPE_BENCH_SMOKE")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }
}

impl BenchOpts {
    /// Cluster sizes for the scaling figures.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        if self.full {
            vec![4, 8, 16, 32]
        } else {
            vec![4, 8]
        }
    }

    /// Dataset size with a per-bin floor — bins that need a big dataset
    /// for stable numbers (e.g. the planning benches) apply their floor
    /// here; smoke mode drops it so `run_all --smoke` stays cheap.
    pub fn dataset_samples_at_least(&self, floor: usize) -> usize {
        if self.smoke {
            self.dataset_samples
        } else {
            self.dataset_samples.max(floor)
        }
    }

    /// A count capped in smoke mode (e.g. probe mini-batches, iterations).
    pub fn capped(&self, normal: usize, smoke: usize) -> usize {
        if self.smoke {
            smoke
        } else {
            normal
        }
    }
}

/// The outcome of one (system, experiment-point) evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct PointResult {
    /// Tokens per second (non-padding).
    pub throughput: f64,
    /// Chosen parallelism.
    pub parallel: String,
    /// Overall padding efficiency.
    pub padding_efficiency: f64,
    /// Encoder-side padding efficiency.
    pub encoder_efficiency: f64,
    /// Decoder-side padding efficiency.
    pub decoder_efficiency: f64,
    /// Mean planning time per iteration (µs).
    pub mean_planning_us: f64,
    /// Mean iteration time (µs).
    pub mean_iteration_us: f64,
    /// Iteration-time estimation MAPE.
    pub time_mape: f64,
    /// Peak-memory estimation MAPE.
    pub memory_mape: f64,
    /// Per-iteration (estimated, measured) iteration times (µs).
    pub time_pairs: Vec<(f64, f64)>,
    /// Per-iteration (estimated, measured) worst-stage peak memory (bytes).
    pub memory_pairs: Vec<(u64, u64)>,
    /// Raw per-iteration planning times (µs).
    pub planning_times_us: Vec<f64>,
}

impl PointResult {
    fn from_report(report: &RunReport, parallel: ParallelConfig) -> Option<Self> {
        if !report.feasible() || report.records.is_empty() {
            return None;
        }
        let n = report.records.len() as f64;
        Some(PointResult {
            throughput: report.throughput(),
            parallel: parallel.to_string(),
            padding_efficiency: report.padding.efficiency(),
            encoder_efficiency: report.padding.encoder_efficiency(),
            decoder_efficiency: report.padding.decoder_efficiency(),
            mean_planning_us: report
                .records
                .iter()
                .map(|r| r.planning_time_us)
                .sum::<f64>()
                / n,
            mean_iteration_us: report.records.iter().map(|r| r.measured_time).sum::<f64>() / n,
            time_mape: report.time_mape(),
            memory_mape: report.memory_mape(),
            time_pairs: report
                .records
                .iter()
                .map(|r| (r.est_time, r.measured_time))
                .collect(),
            memory_pairs: report
                .records
                .iter()
                .map(|r| {
                    (
                        r.est_peak.iter().copied().max().unwrap_or(0),
                        r.measured_peak.iter().copied().max().unwrap_or(0),
                    )
                })
                .collect(),
            planning_times_us: report.records.iter().map(|r| r.planning_time_us).collect(),
        })
    }
}

/// One experiment point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The model under training.
    pub model: ModelConfig,
    /// Cluster size in GPUs.
    pub num_gpus: usize,
    /// Maximum sequence length (truncation threshold).
    pub max_seq_len: usize,
    /// Global batch size in tokens.
    pub gbs_tokens: usize,
}

/// Probe mini-batches for grid-search scoring.
pub fn probe_minibatches(dataset: &Dataset, point: &Point, n: usize) -> Vec<Vec<Sample>> {
    GlobalBatchIter::new(
        dataset,
        GlobalBatchConfig {
            tokens_per_batch: point.gbs_tokens,
            max_seq_len: point.max_seq_len,
        },
    )
    .take(n)
    .collect()
}

fn profile_opts() -> ProfileOptions {
    ProfileOptions::default()
}

/// Jitter-free run configuration for grid-search probe simulation.
fn probe_run() -> RunConfig {
    RunConfig {
        max_iterations: None,
        jitter: None,
        allocator: AllocatorMode::PreAllocatedPool,
        record_trace: false,
    }
}

/// Simulated throughput of `planner` over `probes` (None on any failure).
fn probe_throughput(planner: &dyn IterationPlanner, probes: &[Vec<Sample>]) -> Option<f64> {
    let run = probe_run();
    let mut tokens = 0u64;
    let mut time = 0.0;
    for (i, mb) in probes.iter().enumerate() {
        let plan = planner.plan(mb).ok()?;
        let (measured, _, _) = simulate_iteration(planner.cost_model(), &plan, &run, i).ok()?;
        tokens += plan.actual_tokens;
        time += measured;
    }
    (time > 0.0).then(|| tokens as f64 / time)
}

/// Grid-search DynaPipe's parallelism, then run it. Returns the point
/// result and the winning parallelism (for the MLM+DS (C) comparison).
pub fn eval_dynapipe(
    hw: &HardwareModel,
    dataset: &Dataset,
    point: &Point,
    opts: &BenchOpts,
) -> Option<(PointResult, ParallelConfig)> {
    let probes = probe_minibatches(dataset, point, opts.probes);
    let scores = dynapipe_core::search_parallelism(
        hw,
        &point.model,
        point.num_gpus,
        &probes,
        PlannerConfig::default(),
        &profile_opts(),
    );
    for cand in scores {
        let planner = DynaPipePlanner::new(cand.cost_model.clone(), PlannerConfig::default());
        let report = run_point(&planner, dataset, point, opts);
        if let Some(r) = PointResult::from_report(&report, cand.parallel) {
            return Some((r, cand.parallel));
        }
    }
    None
}

/// Grid-search the packing baseline (parallelism × micro-batch size) and
/// run the winner. Pass `fixed_parallel` to pin the parallelism (the
/// paper's "MLM+DS (C)" variant).
pub fn eval_packing(
    hw: &HardwareModel,
    dataset: &Dataset,
    point: &Point,
    opts: &BenchOpts,
    fixed_parallel: Option<ParallelConfig>,
) -> Option<PointResult> {
    let probes = probe_minibatches(dataset, point, opts.probes);
    let candidates: Vec<ParallelConfig> = match fixed_parallel {
        Some(p) => vec![p],
        None => ParallelConfig::enumerate(point.num_gpus, hw.gpus_per_node),
    };
    let mut scored: Vec<(f64, Arc<CostModel>, ParallelConfig, usize)> = Vec::new();
    for parallel in candidates {
        if !parallel.fits_model(&point.model) {
            continue;
        }
        let cm = Arc::new(CostModel::build(
            hw.clone(),
            point.model,
            parallel,
            &profile_opts(),
        ));
        if !cm.is_feasible() {
            continue;
        }
        for mb_size in [1usize, 2, 4] {
            let planner = BaselinePlanner::new(cm.clone(), packing_kind(point, mb_size));
            if let Some(tps) = probe_throughput(&planner, &probes) {
                scored.push((tps, cm.clone(), parallel, mb_size));
            }
        }
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, cm, parallel, mb_size) in scored {
        let planner = BaselinePlanner::new(cm, packing_kind(point, mb_size));
        let report = run_point(&planner, dataset, point, opts);
        if let Some(r) = PointResult::from_report(&report, parallel) {
            return Some(r);
        }
    }
    None
}

fn packing_kind(point: &Point, mb_size: usize) -> BaselineKind {
    BaselineKind::Packing {
        max_seq_len: point.max_seq_len,
        max_target_len: (point.max_seq_len / 4).max(64),
        mb_size,
    }
}

/// Evaluate the token-based baseline at a given parallelism, searching the
/// per-micro-batch token budget.
pub fn eval_token_based(
    hw: &HardwareModel,
    dataset: &Dataset,
    point: &Point,
    opts: &BenchOpts,
    parallel: ParallelConfig,
    ordering: OrderingStrategy,
) -> Option<PointResult> {
    let cm = Arc::new(CostModel::build(
        hw.clone(),
        point.model,
        parallel,
        &profile_opts(),
    ));
    if !cm.is_feasible() {
        return None;
    }
    let probes = probe_minibatches(dataset, point, opts.probes);
    let mut best: Option<(f64, usize)> = None;
    for budget in [1024usize, 2048, 4096, 8192, 16384] {
        let planner = BaselinePlanner::new(
            cm.clone(),
            BaselineKind::TokenBased {
                token_budget: budget,
                ordering,
            },
        );
        let mut tokens = 0u64;
        let mut time = 0.0;
        let mut ok = true;
        for mb in &probes {
            match planner.plan_iteration(mb) {
                Ok(plan) => {
                    tokens += plan.actual_tokens;
                    time += plan.est_iteration_time;
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && time > 0.0 {
            let tps = tokens as f64 / time;
            if best.is_none_or(|(b, _)| tps > b) {
                best = Some((tps, budget));
            }
        }
    }
    let (_, budget) = best?;
    let planner = BaselinePlanner::new(
        cm,
        BaselineKind::TokenBased {
            token_budget: budget,
            ordering,
        },
    );
    let report = run_point(&planner, dataset, point, opts);
    PointResult::from_report(&report, parallel)
}

/// Run a planner on one point with the harness run configuration.
pub fn run_point(
    planner: &dyn IterationPlanner,
    dataset: &Dataset,
    point: &Point,
    opts: &BenchOpts,
) -> RunReport {
    run_training(
        planner,
        dataset,
        GlobalBatchConfig {
            tokens_per_batch: point.gbs_tokens,
            max_seq_len: point.max_seq_len,
        },
        RunConfig {
            max_iterations: Some(opts.iters),
            ..Default::default()
        },
    )
}

/// Write a canonical trend-tracked artifact at the repo root (e.g.
/// `BENCH_planning.json`, `BENCH_runtime.json`) — unless this is a smoke
/// run, whose toy-workload numbers must never clobber the tracked ones.
pub fn write_root_artifact<T: Serialize>(opts: &BenchOpts, name: &str, value: &T) {
    if opts.smoke {
        println!("  (smoke: {name} left untouched)");
        return;
    }
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(name, &s) {
                eprintln!("warning: could not write {name}: {e}");
            } else {
                println!("  -> {name}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Write a JSON result file under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  -> results/{name}.json");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Format tokens/s or an OOM marker.
pub fn fmt_tps(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:10.0}"),
        None => format!("{:>10}", "OOM"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke_gpt_4gpu() {
        let opts = BenchOpts {
            dataset_samples: 400,
            iters: 1,
            probes: 1,
            seed: 1,
            full: false,
            smoke: false,
        };
        let hw = HardwareModel::a100_cluster();
        let dataset = Dataset::flanv2(opts.seed, opts.dataset_samples);
        let point = Point {
            model: ModelConfig::gpt_3_35b(),
            num_gpus: 4,
            max_seq_len: 1024,
            gbs_tokens: 16384,
        };
        let (dyna, parallel) = eval_dynapipe(&hw, &dataset, &point, &opts).expect("feasible");
        assert!(dyna.throughput > 0.0);
        let packing = eval_packing(&hw, &dataset, &point, &opts, Some(parallel));
        assert!(packing.is_some());
    }
}
