//! Criterion bench: pipeline schedulers (§5) — 1F1B generation, the
//! memory-aware adaptive schedule, timeline evaluation, and the
//! cluster-count ablation of micro-batch reordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynapipe_schedule::{
    adaptive_schedule, evaluate_schedule, one_f_one_b, reorder_micro_batches, ReorderConfig,
    ScheduleInput,
};

fn varied_input(m: usize, c: usize) -> ScheduleInput {
    let mut input = ScheduleInput::uniform(m, c, 100.0, 200.0, 1000);
    for i in 0..m {
        let scale = 0.3 + ((i * 2654435761) % 17) as f64 / 10.0;
        for j in 0..c {
            input.fwd[i][j] *= scale;
            input.bwd[i][j] *= scale;
        }
    }
    input.mem_limit = vec![6000; c];
    input
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedules");
    for (m, stages) in [(32usize, 4usize), (64, 8), (128, 16)] {
        let input = varied_input(m, stages);
        group.bench_with_input(
            BenchmarkId::new("onefb", format!("m{m}_c{stages}")),
            &(m, stages),
            |b, &(m, stages)| b.iter(|| one_f_one_b(m, stages)),
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("m{m}_c{stages}")),
            &input,
            |b, input| b.iter(|| adaptive_schedule(std::hint::black_box(input))),
        );
        let schedule = adaptive_schedule(&input);
        group.bench_with_input(
            BenchmarkId::new("timeline_eval", format!("m{m}_c{stages}")),
            &(schedule, input),
            |b, (schedule, input)| {
                b.iter(|| evaluate_schedule(schedule, input).unwrap().times.makespan)
            },
        );
    }
    // Ablation: reordering cluster count (paper: 3-4 suffice; cost grows
    // factorially with the cluster count).
    let input = varied_input(24, 4);
    for k in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("reorder_clusters", k),
            &input,
            |b, input| {
                b.iter(|| reorder_micro_batches(input, &ReorderConfig { num_clusters: k }).1)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
