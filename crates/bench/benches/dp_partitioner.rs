//! Criterion bench: the DP micro-batch partitioner (§4) — the dominant
//! term in Fig. 17's planning time — across mini-batch sizes and `t_max`
//! candidate budgets (the resolution ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynapipe_batcher::{sort_samples, DpConfig, Partitioner, SliceFwdCosts};
use dynapipe_model::memory::RecomputeMode;
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, Sample};
use dynapipe_model::{HardwareModel, ModelConfig, ParallelConfig};

fn minibatch(tokens: usize) -> Vec<Sample> {
    let d = Dataset::flanv2(77, 20_000);
    let mut out = Vec::new();
    let mut acc = 0usize;
    for s in &d.samples {
        let s = s.truncated(4096);
        acc += s.total_tokens();
        out.push(s);
        if acc >= tokens {
            break;
        }
    }
    out
}

fn bench_partitioner(c: &mut Criterion) {
    let cm = CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_6_7b(),
        ParallelConfig::new(1, 2, 4),
        &ProfileOptions::default(),
    );
    let mut group = c.benchmark_group("dp_partitioner");
    group.sample_size(10);
    for gbs in [16384usize, 65536] {
        let mut samples = minibatch(gbs);
        sort_samples(cm.model.arch, &mut samples);
        group.bench_with_input(BenchmarkId::new("gbs", gbs), &samples, |b, samples| {
            let p = Partitioner::new(&cm, DpConfig::new(cm.min_activation_budget()));
            b.iter(|| {
                p.partition(std::hint::black_box(samples))
                    .unwrap()
                    .num_micro_batches()
            })
        });
    }
    // Ablation: t_max candidate budget (resolution of the outer sweep).
    let mut samples = minibatch(65536);
    sort_samples(cm.model.arch, &mut samples);
    for cands in [16usize, 96, 512] {
        group.bench_with_input(
            BenchmarkId::new("tmax_candidates", cands),
            &samples,
            |b, samples| {
                let mut cfg = DpConfig::new(cm.min_activation_budget());
                cfg.max_candidates = cands;
                let p = Partitioner::new(&cm, cfg);
                b.iter(|| {
                    p.partition(std::hint::black_box(samples))
                        .unwrap()
                        .est_iteration_time
                })
            },
        );
    }
    // Ablation: golden-section probe stop (the bracket fraction at which
    // the seed probe hands its prune bound to the ascending sweep). The
    // partition is bit-identical across the whole range (pure perf knob);
    // the shipped default is `DpConfig::PROBE_STOP_DIVISOR`, the winner
    // of this sweep on the fig17 workload.
    for divisor in [4usize, 8, 16, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("probe_stop_divisor", divisor),
            &samples,
            |b, samples| {
                let mut cfg = DpConfig::new(cm.min_activation_budget());
                cfg.probe_stop_divisor = divisor;
                let p = Partitioner::new(&cm, cfg);
                b.iter(|| {
                    p.partition(std::hint::black_box(samples))
                        .unwrap()
                        .est_iteration_time
                })
            },
        );
    }
    // The pricing layer in isolation: scalar per-shape grid queries vs
    // one batched solve against a shared query plan (what the cost pass
    // does per mode). Run on the distinct shapes of a 65k-token
    // mini-batch.
    {
        let p = Partitioner::new(&cm, DpConfig::new(cm.min_activation_budget()));
        let shapes = p.shape_pass(&samples);
        let distinct = shapes.distinct_shapes().to_vec();
        group.bench_with_input(
            BenchmarkId::new("price_scalar", distinct.len()),
            &distinct,
            |b, distinct| {
                let pricer = cm.shape_pricer(RecomputeMode::Selective);
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for s in std::hint::black_box(distinct) {
                        acc += pricer.mb_fwd(s) + pricer.mb_bwd(s);
                        acc += pricer.mb_activation_max(s) as f64;
                    }
                    acc
                })
            },
        );
        // Cold: plan build (locate) + pricing, what a one-shot caller pays.
        group.bench_with_input(
            BenchmarkId::new("price_batched_cold", distinct.len()),
            &distinct,
            |b, distinct| {
                let pricer = cm.shape_pricer(RecomputeMode::Selective);
                b.iter(|| {
                    let batch = pricer.locate_batch(std::hint::black_box(distinct));
                    let fwd = pricer.mb_fwd_batch(&batch);
                    let bwd = pricer.mb_bwd_batch(&batch);
                    let act = pricer.mb_activation_max_batch(&batch);
                    let mut acc = 0.0f64;
                    for i in 0..distinct.len() {
                        acc += fwd[i] + bwd[i] + act[i] as f64;
                    }
                    acc
                })
            },
        );
        // Warm: plan located once and re-priced, what each recompute mode
        // of the §7 sweep pays after `SliceFwdCosts` built the plan.
        group.bench_with_input(
            BenchmarkId::new("price_batched_warm", distinct.len()),
            &distinct,
            |b, distinct| {
                let pricer = cm.shape_pricer(RecomputeMode::Selective);
                let batch = pricer.locate_batch(distinct);
                b.iter(|| {
                    let fwd = pricer.mb_fwd_batch(std::hint::black_box(&batch));
                    let bwd = pricer.mb_bwd_batch(&batch);
                    let act = pricer.mb_activation_max_batch(&batch);
                    let mut acc = 0.0f64;
                    for i in 0..distinct.len() {
                        acc += fwd[i] + bwd[i] + act[i] as f64;
                    }
                    acc
                })
            },
        );
    }

    // The §7 sweep's de-duplication win in isolation: one mini-batch, all
    // recompute modes. "rebuild" reruns the full two-pass build per mode
    // (what a context-free caller pays); "shared" reuses one shape pass
    // and one forward table across the whole mode sweep (what
    // `plan_iteration` pays via `PlanContext`).
    for (label, shared) in [("mode_sweep_rebuild", false), ("mode_sweep_shared", true)] {
        group.bench_with_input(BenchmarkId::new(label, 65536), &samples, |b, samples| {
            let cfg = DpConfig::new(cm.min_activation_budget());
            b.iter(|| {
                let mut total_mbs = 0usize;
                if shared {
                    let p = Partitioner::new(&cm, cfg);
                    let shapes = p.shape_pass(std::hint::black_box(samples));
                    let fwd = SliceFwdCosts::build(&cm, &shapes);
                    for mode in RecomputeMode::ALL {
                        let mut mode_cfg = cfg;
                        mode_cfg.recompute = mode;
                        let p = Partitioner::new(&cm, mode_cfg);
                        total_mbs += p
                            .partition_with_context(&shapes, &fwd, samples)
                            .unwrap()
                            .num_micro_batches();
                    }
                } else {
                    for mode in RecomputeMode::ALL {
                        let mut mode_cfg = cfg;
                        mode_cfg.recompute = mode;
                        let p = Partitioner::new(&cm, mode_cfg);
                        total_mbs += p
                            .partition(std::hint::black_box(samples))
                            .unwrap()
                            .num_micro_batches();
                    }
                }
                total_mbs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioner);
criterion_main!(benches);
