//! Criterion bench: sample ordering (sort vs TSP, §4/§8.4) and
//! Karmarkar–Karp replica balancing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynapipe_batcher::{karmarkar_karp, sort_samples, tsp_order};
use dynapipe_data::{Dataset, Sample};
use dynapipe_model::ModelArch;

fn samples(n: usize) -> Vec<Sample> {
    Dataset::flanv2(55, n)
        .samples
        .iter()
        .map(|s| s.truncated(4096))
        .collect()
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");
    for n in [64usize, 256, 512] {
        let base = samples(n);
        group.bench_with_input(BenchmarkId::new("sort", n), &base, |b, base| {
            b.iter(|| {
                let mut s = base.clone();
                sort_samples(ModelArch::T5, &mut s);
                s.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("tsp", n), &base, |b, base| {
            b.iter(|| {
                let mut s = base.clone();
                tsp_order(&mut s);
                s.len()
            })
        });
    }
    group.finish();
}

fn bench_kk(c: &mut Criterion) {
    let mut group = c.benchmark_group("karmarkar_karp");
    for (n, k) in [(32usize, 2usize), (128, 4), (512, 8)] {
        let weights: Vec<f64> = (0..n).map(|i| 10.0 + ((i * 7919) % 997) as f64).collect();
        group.bench_with_input(
            BenchmarkId::new("partition", format!("n{n}_k{k}")),
            &weights,
            |b, w| b.iter(|| karmarkar_karp(std::hint::black_box(w), k).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ordering, bench_kk);
criterion_main!(benches);
