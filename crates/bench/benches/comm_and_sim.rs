//! Criterion bench: communication planning (§6), plan verification, the
//! discrete-event simulator, and the §7 allocator ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynapipe_comm::{plan_communication, verify_deadlock_free, PlanInputs};
use dynapipe_core::{compile_replica, DynaPipePlanner, PlannerConfig};
use dynapipe_cost::{CostModel, ProfileOptions};
use dynapipe_data::{Dataset, GlobalBatchConfig, GlobalBatchIter};
use dynapipe_model::memory::RecomputeMode;
use dynapipe_model::{HardwareModel, MicroBatchShape, ModelConfig, ParallelConfig};
use dynapipe_schedule::{adaptive_schedule, evaluate_schedule, ScheduleInput};
use dynapipe_sim::{AllocatorMode, Engine, EngineConfig};
use std::sync::Arc;

fn bench_comm_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_planning");
    for (m, stages) in [(16usize, 4usize), (64, 8)] {
        let mut input = ScheduleInput::uniform(m, stages, 100.0, 200.0, 1);
        for i in 0..m {
            let scale = 0.4 + ((i * 31) % 11) as f64 / 6.0;
            for j in 0..stages {
                input.fwd[i][j] *= scale;
                input.bwd[i][j] *= scale;
            }
        }
        let schedule = adaptive_schedule(&input);
        let timeline = evaluate_schedule(&schedule, &input).unwrap();
        let boundary = vec![vec![1 << 20; stages - 1]; m];
        let shapes = vec![MicroBatchShape::gpt(2, 1024); m];
        group.bench_with_input(
            BenchmarkId::new("plan", format!("m{m}_c{stages}")),
            &(),
            |b, _| {
                b.iter(|| {
                    plan_communication(&PlanInputs {
                        schedule: &schedule,
                        timeline: &timeline,
                        boundary_bytes: &boundary,
                        shapes: &shapes,
                        recompute: RecomputeMode::None,
                    })
                    .num_instructions()
                })
            },
        );
        let plan = plan_communication(&PlanInputs {
            schedule: &schedule,
            timeline: &timeline,
            boundary_bytes: &boundary,
            shapes: &shapes,
            recompute: RecomputeMode::None,
        });
        group.bench_with_input(
            BenchmarkId::new("verify", format!("m{m}_c{stages}")),
            &plan,
            |b, plan| b.iter(|| verify_deadlock_free(std::hint::black_box(plan)).is_ok()),
        );
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let cm = Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_3_35b(),
        ParallelConfig::new(1, 1, 4),
        &ProfileOptions::default(),
    ));
    let planner = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());
    let dataset = Dataset::flanv2(88, 2000);
    let minibatch = GlobalBatchIter::new(
        &dataset,
        GlobalBatchConfig {
            tokens_per_batch: 65536,
            max_seq_len: 2048,
        },
    )
    .next()
    .unwrap();
    let plan = planner.plan_iteration(&minibatch).unwrap();
    let programs = compile_replica(&cm, &plan.replicas[0].plan);
    let mut group = c.benchmark_group("simulator");
    for mode in [AllocatorMode::PreAllocatedPool, AllocatorMode::Caching] {
        group.bench_with_input(
            BenchmarkId::new("iteration", format!("{mode:?}")),
            &programs,
            |b, programs| {
                b.iter(|| {
                    let mut cfg = EngineConfig::unbounded(cm.hw.clone(), cm.num_stages());
                    cfg.allocator_mode = mode;
                    Engine::new(cfg, programs.clone()).run().unwrap().makespan
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_comm_planning, bench_simulator);
criterion_main!(benches);
