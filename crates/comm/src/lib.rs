//! Pipeline instructions and communication planning (§3 and §6).
//!
//! DynaPipe compiles each training iteration into per-device sequences of
//! *pipeline instructions* — `ForwardPass`/`BackwardPass` plus communication
//! ops split into asynchronous `Start` and blocking `Wait` halves
//! (`SendActStart`, `WaitRecvAct`, …). Dynamic schedules produce irregular
//! communication patterns where the naive order (send on produce, receive
//! on use) deadlocks under NCCL's one-channel-per-pair, order-matched
//! semantics (§2.3).
//!
//! The planner here implements the paper's fix: walk the simulated
//! execution timeline in ascending end-time order and, at each tensor's
//! production, enqueue *both* the send on the producer and the matching
//! receive on the consumer — making per-pair communication order globally
//! consistent by construction. `Wait` ops are placed as late as possible
//! (immediately before the consuming computation) to maximize overlap.
//!
//! [`verify`] independently checks any instruction stream for deadlock
//! freedom with an abstract executor, and [`naive`] builds the
//! deliberately-unsafe baseline order so tests (and the motivation
//! experiment) can demonstrate the deadlock the planner avoids.

pub mod instruction;
pub mod naive;
pub mod plan;
pub mod verify;

pub use instruction::{CommKind, ExecutionPlan, Instr};
pub use naive::naive_plan;
pub use plan::{plan_communication, PlanInputs};
pub use verify::{verify_deadlock_free, VerifyError};
