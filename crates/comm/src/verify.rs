//! Deadlock-freedom verification of execution plans.
//!
//! An abstract executor independent of the discrete-event simulator:
//! computation is instantaneous, communication matches NCCL semantics (one
//! in-flight transfer per device pair, strict order matching at the channel
//! heads). Any plan that passes here runs without communication deadlock on
//! the full simulator; plans with inconsistent per-pair orders fail with a
//! diagnosis. DynaPipe runs this check on every generated plan.

use crate::instruction::{ExecutionPlan, Instr};
use std::collections::{HashMap, HashSet, VecDeque};

/// Why verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Channel heads disagree (two sends, two receives, or different tags).
    OrderMismatch {
        /// The device pair.
        pair: (usize, usize),
        /// Human-readable description of the two head ops.
        detail: String,
    },
    /// No device can make progress and unfinished instructions remain.
    Stall {
        /// Stages stuck, with their program counters.
        stuck: Vec<(usize, usize)>,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::OrderMismatch { pair, detail } => {
                write!(f, "channel {pair:?} order mismatch: {detail}")
            }
            VerifyError::Stall { stuck } => write!(f, "verification stall at {stuck:?}"),
        }
    }
}

impl std::error::Error for VerifyError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posted {
    device: usize,
    send: bool,
    tag: u64,
    bytes: u64,
}

/// Verify that `plan` executes to completion under NCCL channel semantics.
pub fn verify_deadlock_free(plan: &ExecutionPlan) -> Result<(), VerifyError> {
    let c = plan.num_stages();
    let mut pc = vec![0usize; c];
    let mut channels: HashMap<(usize, usize), (VecDeque<Posted>, VecDeque<Posted>)> =
        HashMap::new();
    let mut completed: HashSet<u64> = HashSet::new();

    // Try to match the channel heads for `pair`; errors on inconsistency.
    fn try_match(
        pair: (usize, usize),
        ch: &mut (VecDeque<Posted>, VecDeque<Posted>),
        completed: &mut HashSet<u64>,
    ) -> Result<(), VerifyError> {
        loop {
            let (Some(a), Some(b)) = (ch.0.front(), ch.1.front()) else {
                return Ok(());
            };
            if a.send == b.send {
                return Err(VerifyError::OrderMismatch {
                    pair,
                    detail: format!(
                        "both heads are {} (tags {} and {})",
                        if a.send { "sends" } else { "receives" },
                        a.tag,
                        b.tag
                    ),
                });
            }
            if a.tag != b.tag || a.bytes != b.bytes {
                return Err(VerifyError::OrderMismatch {
                    pair,
                    detail: format!(
                        "tag/size mismatch: ({}, {} B) vs ({}, {} B)",
                        a.tag, a.bytes, b.tag, b.bytes
                    ),
                });
            }
            completed.insert(a.tag);
            ch.0.pop_front();
            ch.1.pop_front();
        }
    }

    loop {
        let mut progressed = false;
        #[allow(clippy::needless_range_loop)] // `j` indexes pc and per_stage together
        for j in 0..c {
            while pc[j] < plan.per_stage[j].len() {
                match plan.per_stage[j][pc[j]] {
                    Instr::ForwardPass { .. } | Instr::BackwardPass { .. } => {
                        pc[j] += 1;
                        progressed = true;
                    }
                    Instr::CommStart {
                        kind,
                        peer,
                        bytes,
                        tag,
                        ..
                    } => {
                        let peer = peer as usize;
                        let pair = (j.min(peer), j.max(peer));
                        let ch = channels.entry(pair).or_default();
                        let posted = Posted {
                            device: j,
                            send: kind.is_send(),
                            tag,
                            bytes,
                        };
                        if j == pair.0 {
                            ch.0.push_back(posted);
                        } else {
                            ch.1.push_back(posted);
                        }
                        try_match(pair, ch, &mut completed)?;
                        pc[j] += 1;
                        progressed = true;
                    }
                    Instr::CommWait { tag, .. } => {
                        if completed.contains(&tag) {
                            pc[j] += 1;
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        if pc
            .iter()
            .enumerate()
            .all(|(j, &p)| p == plan.per_stage[j].len())
        {
            return Ok(());
        }
        if !progressed {
            let stuck: Vec<(usize, usize)> = pc
                .iter()
                .enumerate()
                .filter(|&(j, &p)| p < plan.per_stage[j].len())
                .map(|(j, &p)| (j, p))
                .collect();
            return Err(VerifyError::Stall { stuck });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::CommKind;
    use dynapipe_model::memory::RecomputeMode;
    use dynapipe_model::MicroBatchShape;

    fn plan(per_stage: Vec<Vec<Instr>>, m: usize) -> ExecutionPlan {
        ExecutionPlan {
            per_stage,
            shapes: vec![MicroBatchShape::gpt(1, 8); m],
            recompute: RecomputeMode::None,
        }
    }

    #[test]
    fn matched_pair_passes() {
        let p = plan(
            vec![
                vec![
                    Instr::ForwardPass { mb: 0 },
                    Instr::CommStart {
                        kind: CommKind::SendAct,
                        mb: 0,
                        peer: 1,
                        bytes: 8,
                        tag: 0,
                    },
                    Instr::BackwardPass { mb: 0 },
                ],
                vec![
                    Instr::CommStart {
                        kind: CommKind::RecvAct,
                        mb: 0,
                        peer: 0,
                        bytes: 8,
                        tag: 0,
                    },
                    Instr::CommWait {
                        kind: CommKind::RecvAct,
                        mb: 0,
                        tag: 0,
                    },
                    Instr::ForwardPass { mb: 0 },
                    Instr::BackwardPass { mb: 0 },
                ],
            ],
            1,
        );
        verify_deadlock_free(&p).unwrap();
    }

    #[test]
    fn send_send_heads_detected() {
        let p = plan(
            vec![
                vec![Instr::CommStart {
                    kind: CommKind::SendAct,
                    mb: 0,
                    peer: 1,
                    bytes: 8,
                    tag: 0,
                }],
                vec![Instr::CommStart {
                    kind: CommKind::SendGrad,
                    mb: 0,
                    peer: 0,
                    bytes: 8,
                    tag: 1,
                }],
            ],
            0,
        );
        let err = verify_deadlock_free(&p).unwrap_err();
        assert!(matches!(err, VerifyError::OrderMismatch { .. }));
    }

    #[test]
    fn wait_without_peer_stalls() {
        let p = plan(
            vec![
                vec![
                    Instr::CommStart {
                        kind: CommKind::RecvAct,
                        mb: 0,
                        peer: 1,
                        bytes: 8,
                        tag: 0,
                    },
                    Instr::CommWait {
                        kind: CommKind::RecvAct,
                        mb: 0,
                        tag: 0,
                    },
                ],
                vec![],
            ],
            0,
        );
        let err = verify_deadlock_free(&p).unwrap_err();
        match err {
            VerifyError::Stall { stuck } => assert_eq!(stuck, vec![(0, 1)]),
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn tag_mismatch_detected() {
        let p = plan(
            vec![
                vec![Instr::CommStart {
                    kind: CommKind::SendAct,
                    mb: 0,
                    peer: 1,
                    bytes: 8,
                    tag: 0,
                }],
                vec![Instr::CommStart {
                    kind: CommKind::RecvAct,
                    mb: 1,
                    peer: 0,
                    bytes: 8,
                    tag: 2,
                }],
            ],
            0,
        );
        let err = verify_deadlock_free(&p).unwrap_err();
        assert!(matches!(err, VerifyError::OrderMismatch { .. }));
    }

    #[test]
    fn empty_plan_passes() {
        verify_deadlock_free(&plan(vec![vec![], vec![]], 0)).unwrap();
    }
}
