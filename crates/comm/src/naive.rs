//! The naive communication order (§2.3's strawman): send right after a
//! tensor is produced, receive right before it is used.
//!
//! Under 1F1B with uniform micro-batches this happens to align across
//! stages, but under dynamic schedules the per-pair orders disagree and the
//! pipeline deadlocks — the motivating failure DynaPipe's planner (§6)
//! eliminates. This module exists to reproduce that failure in tests and in
//! the motivation experiment.

use crate::instruction::{CommKind, ExecutionPlan, Instr};
use dynapipe_model::memory::RecomputeMode;
use dynapipe_model::{Bytes, MicroBatchShape};
use dynapipe_schedule::Schedule;

/// Build the naive plan: on each stage, walk the schedule order; emit
/// `RecvStart` + `Wait` immediately before each consuming computation and
/// `SendStart` immediately after each producing computation.
pub fn naive_plan(
    schedule: &Schedule,
    boundary_bytes: &[Vec<Bytes>],
    shapes: &[MicroBatchShape],
    recompute: RecomputeMode,
) -> ExecutionPlan {
    let c = schedule.num_stages();
    let nb = c.saturating_sub(1);
    let tag_of = |mb: usize, boundary: usize, grad: bool| -> u64 {
        ((mb * nb.max(1) + boundary) * 2 + usize::from(grad)) as u64
    };
    let mut per_stage = Vec::with_capacity(c);
    for j in 0..c {
        let mut stream = Vec::new();
        for op in &schedule.orders[j] {
            // Receive-on-use.
            if !op.backward && j > 0 {
                let tag = tag_of(op.mb, j - 1, false);
                stream.push(Instr::CommStart {
                    kind: CommKind::RecvAct,
                    mb: op.mb as u32,
                    peer: (j - 1) as u32,
                    bytes: boundary_bytes[op.mb][j - 1],
                    tag,
                });
                stream.push(Instr::CommWait {
                    kind: CommKind::RecvAct,
                    mb: op.mb as u32,
                    tag,
                });
            }
            if op.backward && j + 1 < c {
                let tag = tag_of(op.mb, j, true);
                stream.push(Instr::CommStart {
                    kind: CommKind::RecvGrad,
                    mb: op.mb as u32,
                    peer: (j + 1) as u32,
                    bytes: boundary_bytes[op.mb][j],
                    tag,
                });
                stream.push(Instr::CommWait {
                    kind: CommKind::RecvGrad,
                    mb: op.mb as u32,
                    tag,
                });
            }
            stream.push(if op.backward {
                Instr::BackwardPass { mb: op.mb as u32 }
            } else {
                Instr::ForwardPass { mb: op.mb as u32 }
            });
            // Send-on-produce.
            if !op.backward && j + 1 < c {
                stream.push(Instr::CommStart {
                    kind: CommKind::SendAct,
                    mb: op.mb as u32,
                    peer: (j + 1) as u32,
                    bytes: boundary_bytes[op.mb][j],
                    tag: tag_of(op.mb, j, false),
                });
            }
            if op.backward && j > 0 {
                stream.push(Instr::CommStart {
                    kind: CommKind::SendGrad,
                    mb: op.mb as u32,
                    peer: (j - 1) as u32,
                    bytes: boundary_bytes[op.mb][j - 1],
                    tag: tag_of(op.mb, j - 1, true),
                });
            }
        }
        per_stage.push(stream);
    }
    ExecutionPlan {
        per_stage,
        shapes: shapes.to_vec(),
        recompute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_deadlock_free, VerifyError};
    use dynapipe_schedule::{adaptive_schedule, one_f_one_b, ScheduleInput};

    fn bytes(m: usize, c: usize) -> Vec<Vec<Bytes>> {
        vec![vec![64; c.saturating_sub(1)]; m]
    }

    fn shapes(m: usize) -> Vec<MicroBatchShape> {
        vec![MicroBatchShape::gpt(1, 64); m]
    }

    #[test]
    fn naive_plan_is_wellformed() {
        let s = one_f_one_b(4, 3);
        let plan = naive_plan(&s, &bytes(4, 3), &shapes(4), RecomputeMode::None);
        plan.validate().unwrap();
    }

    #[test]
    fn naive_unsafe_even_for_1f1b_without_fusion() {
        // §2.3/Fig. 8a: 1F1B's steady state has send/recv *crossings*
        // between adjacent stages, which real systems handle by fusing the
        // pair into one sendrecv operator. Without fusion (this strawman),
        // even 1F1B's order mismatches at the crossing — confirming why the
        // planner must order both sides explicitly.
        let s = one_f_one_b(6, 3);
        let plan = naive_plan(&s, &bytes(6, 3), &shapes(6), RecomputeMode::None);
        assert!(verify_deadlock_free(&plan).is_err());
    }

    #[test]
    fn naive_safe_for_two_stage_forward_only_traffic() {
        // A single micro-batch has no crossings; the naive order is fine.
        let s = one_f_one_b(1, 2);
        let plan = naive_plan(&s, &bytes(1, 2), &shapes(1), RecomputeMode::None);
        verify_deadlock_free(&plan).unwrap();
    }

    #[test]
    fn naive_deadlocks_under_dynamic_schedule() {
        // An adaptive schedule with eager injection produces the irregular
        // pattern of Fig. 8b; the naive order must deadlock on it.
        let m = 8;
        let c = 4;
        let input = ScheduleInput::uniform(m, c, 10.0, 20.0, 1);
        let s = adaptive_schedule(&input);
        let plan = naive_plan(&s, &bytes(m, c), &shapes(m), RecomputeMode::None);
        let err = verify_deadlock_free(&plan);
        assert!(
            err.is_err(),
            "naive order should deadlock under the adaptive schedule"
        );
        match err.unwrap_err() {
            VerifyError::OrderMismatch { .. } | VerifyError::Stall { .. } => {}
        }
    }
}
