//! Ahead-of-time communication planning (§6).
//!
//! Given a pipeline schedule and its simulated timeline, produce per-stage
//! instruction streams in which every send and its matching receive are
//! enqueued together, at the production time of the tensor — walking ops in
//! ascending end-time order. Because both sides of every transfer are
//! appended to their stages' communication queues at the same moment of the
//! same global scan, the per-device-pair communication orders are identical
//! by construction, which is the paper's deadlock-freedom argument.
//!
//! `Wait` ops are placed as late as possible: `WaitRecvAct`/`WaitRecvGrad`
//! immediately before the computation consuming the tensor, maximizing the
//! window in which communication overlaps computation (Fig. 12).

use crate::instruction::{CommKind, ExecutionPlan, Instr};
use dynapipe_model::memory::RecomputeMode;
use dynapipe_model::{Bytes, MicroBatchShape};
use dynapipe_schedule::{Schedule, Timeline};

/// Inputs to communication planning.
pub struct PlanInputs<'a> {
    /// The pipeline schedule (per-stage op orders).
    pub schedule: &'a Schedule,
    /// Simulated execution timeline of that schedule.
    pub timeline: &'a Timeline,
    /// `boundary_bytes[mb][j]`: bytes of the tensor crossing the boundary
    /// between stages `j` and `j+1` for micro-batch `mb` (activations
    /// forward, gradients backward — same size).
    pub boundary_bytes: &'a [Vec<Bytes>],
    /// Padded micro-batch shapes (embedded in the plan).
    pub shapes: &'a [MicroBatchShape],
    /// Recomputation mode the plan assumes.
    pub recompute: RecomputeMode,
}

/// Correlation tag for the transfer of `mb` across boundary `j`;
/// `grad` distinguishes the backward transfer.
fn tag_of(mb: usize, boundary: usize, grad: bool, num_boundaries: usize) -> u64 {
    ((mb * num_boundaries.max(1) + boundary) * 2 + usize::from(grad)) as u64
}

/// Plan communication and compile the full execution plan.
///
/// # Panics
///
/// Panics if the schedule/timeline/shape dimensions disagree.
pub fn plan_communication(inputs: &PlanInputs<'_>) -> ExecutionPlan {
    let c = inputs.schedule.num_stages();
    let m = inputs.shapes.len();
    assert_eq!(
        inputs.boundary_bytes.len(),
        m,
        "boundary bytes per micro-batch"
    );
    let nb = c.saturating_sub(1);

    // Step 1: walk ops by end time; enqueue send+recv pairs at production.
    #[derive(Clone, Copy)]
    struct QueuedComm {
        ts: f64,
        instr: Instr,
    }
    let mut queues: Vec<Vec<QueuedComm>> = vec![Vec::new(); c];
    for op in inputs.timeline.ops_by_end_time() {
        let (boundary, producer, consumer, send_kind) = if !op.backward {
            if op.stage + 1 >= c {
                continue;
            }
            (op.stage, op.stage, op.stage + 1, CommKind::SendAct)
        } else {
            if op.stage == 0 {
                continue;
            }
            (op.stage - 1, op.stage, op.stage - 1, CommKind::SendGrad)
        };
        let bytes = inputs.boundary_bytes[op.mb][boundary];
        let tag = tag_of(op.mb, boundary, op.backward, nb);
        queues[producer].push(QueuedComm {
            ts: op.end,
            instr: Instr::CommStart {
                kind: send_kind,
                mb: op.mb as u32,
                peer: consumer as u32,
                bytes,
                tag,
            },
        });
        queues[consumer].push(QueuedComm {
            ts: op.end,
            instr: Instr::CommStart {
                kind: send_kind.peer_kind(),
                mb: op.mb as u32,
                peer: producer as u32,
                bytes,
                tag,
            },
        });
    }

    // Step 2: interleave each stage's compute order with its comm queue.
    let mut per_stage: Vec<Vec<Instr>> = Vec::with_capacity(c);
    #[allow(clippy::needless_range_loop)] // `j` indexes three parallel structures
    for j in 0..c {
        let order = &inputs.schedule.orders[j];
        let mut stream: Vec<Instr> = Vec::with_capacity(order.len() * 3);
        let mut qi = 0usize;
        for op in order {
            let start = if op.backward {
                inputs.timeline.times.bwd[op.mb][j].0
            } else {
                inputs.timeline.times.fwd[op.mb][j].0
            };
            // Launch all communications whose tensors exist by the time
            // this computation starts.
            while qi < queues[j].len() && queues[j][qi].ts <= start + 1e-9 {
                stream.push(queues[j][qi].instr);
                qi += 1;
            }
            // Wait (as late as possible) for the tensor this computation
            // consumes.
            if !op.backward && j > 0 {
                stream.push(Instr::CommWait {
                    kind: CommKind::RecvAct,
                    mb: op.mb as u32,
                    tag: tag_of(op.mb, j - 1, false, nb),
                });
            }
            if op.backward && j + 1 < c {
                stream.push(Instr::CommWait {
                    kind: CommKind::RecvGrad,
                    mb: op.mb as u32,
                    tag: tag_of(op.mb, j, true, nb),
                });
            }
            stream.push(if op.backward {
                Instr::BackwardPass { mb: op.mb as u32 }
            } else {
                Instr::ForwardPass { mb: op.mb as u32 }
            });
        }
        // Launch any remaining communications (sends produced by the final
        // computations), then wait for all outstanding sends so the
        // iteration only completes when every transfer has drained.
        let mut send_tags: Vec<(CommKind, u32, u64)> = Vec::new();
        for q in &queues[j] {
            if let Instr::CommStart { kind, mb, tag, .. } = q.instr {
                if kind.is_send() {
                    send_tags.push((kind, mb, tag));
                }
            }
        }
        while qi < queues[j].len() {
            stream.push(queues[j][qi].instr);
            qi += 1;
        }
        for (kind, mb, tag) in send_tags {
            stream.push(Instr::CommWait { kind, mb, tag });
        }
        per_stage.push(stream);
    }

    ExecutionPlan {
        per_stage,
        shapes: inputs.shapes.to_vec(),
        recompute: inputs.recompute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_deadlock_free;
    use dynapipe_schedule::{adaptive_schedule, evaluate_schedule, one_f_one_b, ScheduleInput};

    fn make_plan(m: usize, c: usize, adaptive: bool) -> ExecutionPlan {
        let mut input = ScheduleInput::uniform(m, c, 10.0, 20.0, 1);
        // Introduce variation so adaptive schedules differ from 1F1B.
        for i in 0..m {
            let scale = 0.4 + ((i * 31) % 7) as f64 * 0.35;
            for j in 0..c {
                input.fwd[i][j] *= scale;
                input.bwd[i][j] *= scale;
            }
        }
        let schedule = if adaptive {
            adaptive_schedule(&input)
        } else {
            one_f_one_b(m, c)
        };
        let timeline = evaluate_schedule(&schedule, &input).unwrap();
        let boundary_bytes = vec![vec![1024u64; c.saturating_sub(1)]; m];
        let shapes = vec![MicroBatchShape::gpt(1, 128); m];
        plan_communication(&PlanInputs {
            schedule: &schedule,
            timeline: &timeline,
            boundary_bytes: &boundary_bytes,
            shapes: &shapes,
            recompute: RecomputeMode::None,
        })
    }

    #[test]
    fn plan_is_wellformed() {
        for (m, c) in [(4usize, 2usize), (8, 4), (6, 3)] {
            for adaptive in [false, true] {
                let plan = make_plan(m, c, adaptive);
                plan.validate()
                    .unwrap_or_else(|e| panic!("m={m} c={c} adaptive={adaptive}: {e}"));
            }
        }
    }

    #[test]
    fn every_boundary_crossed_twice_per_micro_batch() {
        let m = 6;
        let c = 3;
        let plan = make_plan(m, c, true);
        // Each of m micro-batches crosses each of (c-1) boundaries once
        // forward and once backward; each transfer appears as one send and
        // one recv Start.
        let starts: usize = plan
            .per_stage
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::CommStart { .. }))
            .count();
        assert_eq!(starts, m * (c - 1) * 2 * 2);
    }

    #[test]
    fn per_pair_order_is_consistent() {
        let plan = make_plan(8, 4, true);
        let c = plan.num_stages();
        for j in 0..c - 1 {
            let tags_fwd_side: Vec<u64> = plan.per_stage[j]
                .iter()
                .filter_map(|i| match i {
                    Instr::CommStart { peer, tag, .. } if *peer == (j + 1) as u32 => Some(*tag),
                    _ => None,
                })
                .collect();
            let tags_bwd_side: Vec<u64> = plan.per_stage[j + 1]
                .iter()
                .filter_map(|i| match i {
                    Instr::CommStart { peer, tag, .. } if *peer == j as u32 => Some(*tag),
                    _ => None,
                })
                .collect();
            assert_eq!(
                tags_fwd_side,
                tags_bwd_side,
                "stages {j} and {} disagree on channel order",
                j + 1
            );
        }
    }

    #[test]
    fn planned_order_verifies_deadlock_free() {
        for (m, c) in [(4usize, 2usize), (8, 4), (12, 6)] {
            for adaptive in [false, true] {
                let plan = make_plan(m, c, adaptive);
                verify_deadlock_free(&plan)
                    .unwrap_or_else(|e| panic!("m={m} c={c} adaptive={adaptive}: {e}"));
            }
        }
    }

    #[test]
    fn waits_precede_their_consumers() {
        let plan = make_plan(6, 3, true);
        // On stage 1, every ForwardPass(mb) must be directly preceded by
        // WaitRecvAct(mb) somewhere earlier with no other consumer of the
        // same tensor in between — check the wait exists before the pass.
        let stream = &plan.per_stage[1];
        for (idx, ins) in stream.iter().enumerate() {
            if let Instr::ForwardPass { mb } = ins {
                let has_wait = stream[..idx].iter().any(|p| {
                    matches!(p, Instr::CommWait { kind: CommKind::RecvAct, mb: w, .. } if w == mb)
                });
                assert!(
                    has_wait,
                    "ForwardPass(mb={mb}) without preceding WaitRecvAct"
                );
            }
        }
    }

    #[test]
    fn single_stage_plan_has_no_comm() {
        let plan = make_plan(4, 1, false);
        assert_eq!(
            plan.per_stage[0].iter().filter(|i| !i.is_compute()).count(),
            0
        );
        plan.validate().unwrap();
    }
}
