//! The pipeline instruction set, following DeepSpeed's design principle as
//! the paper does (§3).

use dynapipe_model::memory::RecomputeMode;
use dynapipe_model::MicroBatchShape;
use serde::{Deserialize, Serialize};

/// Which of the four communication flavours an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommKind {
    /// Send a forward activation to the next stage.
    SendAct,
    /// Receive a forward activation from the previous stage.
    RecvAct,
    /// Send an activation gradient to the previous stage.
    SendGrad,
    /// Receive an activation gradient from the next stage.
    RecvGrad,
}

impl CommKind {
    /// Whether this is a send (vs. receive).
    pub fn is_send(self) -> bool {
        matches!(self, CommKind::SendAct | CommKind::SendGrad)
    }

    /// The complementary kind on the peer device.
    pub fn peer_kind(self) -> CommKind {
        match self {
            CommKind::SendAct => CommKind::RecvAct,
            CommKind::RecvAct => CommKind::SendAct,
            CommKind::SendGrad => CommKind::RecvGrad,
            CommKind::RecvGrad => CommKind::SendGrad,
        }
    }

    /// Instruction name as in the paper ("SendActStart" etc.).
    pub fn start_name(self) -> &'static str {
        match self {
            CommKind::SendAct => "SendActStart",
            CommKind::RecvAct => "RecvActStart",
            CommKind::SendGrad => "SendGradStart",
            CommKind::RecvGrad => "RecvGradStart",
        }
    }

    /// Wait-instruction name as in the paper ("WaitRecvAct" etc.).
    pub fn wait_name(self) -> &'static str {
        match self {
            CommKind::SendAct => "WaitSendAct",
            CommKind::RecvAct => "WaitRecvAct",
            CommKind::SendGrad => "WaitSendGrad",
            CommKind::RecvGrad => "WaitRecvGrad",
        }
    }
}

/// One pipeline instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Execute the forward computation of a micro-batch.
    ForwardPass {
        /// Micro-batch index.
        mb: u32,
    },
    /// Execute the backward computation of a micro-batch.
    BackwardPass {
        /// Micro-batch index.
        mb: u32,
    },
    /// Launch an asynchronous communication (`SendActStart` etc.).
    CommStart {
        /// Communication flavour.
        kind: CommKind,
        /// Micro-batch the tensor belongs to.
        mb: u32,
        /// Peer device (global pipeline-stage rank).
        peer: u32,
        /// Tensor size in bytes (included in the plan so executors never
        /// exchange shapes at runtime, §6).
        bytes: u64,
        /// Correlation tag, unique per transfer.
        tag: u64,
    },
    /// Block until a previously launched communication completes
    /// (`WaitRecvAct` etc.).
    CommWait {
        /// Communication flavour.
        kind: CommKind,
        /// Micro-batch the tensor belongs to.
        mb: u32,
        /// Tag of the communication to wait on.
        tag: u64,
    },
}

impl Instr {
    /// Micro-batch this instruction concerns.
    pub fn mb(&self) -> u32 {
        match self {
            Instr::ForwardPass { mb }
            | Instr::BackwardPass { mb }
            | Instr::CommStart { mb, .. }
            | Instr::CommWait { mb, .. } => *mb,
        }
    }

    /// Whether this is a compute instruction.
    pub fn is_compute(&self) -> bool {
        matches!(self, Instr::ForwardPass { .. } | Instr::BackwardPass { .. })
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instr::ForwardPass { mb } => write!(f, "ForwardPass(mb={mb})"),
            Instr::BackwardPass { mb } => write!(f, "BackwardPass(mb={mb})"),
            Instr::CommStart { kind, mb, peer, .. } => {
                write!(f, "{}(mb={mb}, peer={peer})", kind.start_name())
            }
            Instr::CommWait { kind, mb, .. } => {
                write!(f, "{}(mb={mb})", kind.wait_name())
            }
        }
    }
}

/// A compiled execution plan for one training iteration: what each pipeline
/// stage executes, in order, plus the micro-batch shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Per-stage instruction streams.
    pub per_stage: Vec<Vec<Instr>>,
    /// Padded shape of each micro-batch.
    pub shapes: Vec<MicroBatchShape>,
    /// Recomputation mode the plan assumes.
    pub recompute: RecomputeMode,
}

impl ExecutionPlan {
    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.per_stage.len()
    }

    /// Number of micro-batches.
    pub fn num_micro_batches(&self) -> usize {
        self.shapes.len()
    }

    /// Total instruction count across stages.
    pub fn num_instructions(&self) -> usize {
        self.per_stage.iter().map(Vec::len).sum()
    }

    /// Validate basic well-formedness: every micro-batch runs forward and
    /// backward exactly once per stage, every `CommWait` is preceded by its
    /// `CommStart` on the same stage, and tags are unique per stage.
    pub fn validate(&self) -> Result<(), String> {
        let m = self.num_micro_batches();
        for (j, stream) in self.per_stage.iter().enumerate() {
            let mut fwd = vec![0usize; m];
            let mut bwd = vec![0usize; m];
            let mut started: std::collections::HashSet<u64> = Default::default();
            for ins in stream {
                match ins {
                    Instr::ForwardPass { mb } => fwd[*mb as usize] += 1,
                    Instr::BackwardPass { mb } => bwd[*mb as usize] += 1,
                    Instr::CommStart { tag, .. } => {
                        if !started.insert(*tag) {
                            return Err(format!("stage {j}: duplicate tag {tag}"));
                        }
                    }
                    Instr::CommWait { tag, .. } => {
                        if !started.contains(tag) {
                            return Err(format!("stage {j}: wait before start of tag {tag}"));
                        }
                    }
                }
            }
            if fwd.iter().any(|&x| x != 1) || bwd.iter().any(|&x| x != 1) {
                return Err(format!("stage {j}: some micro-batch not run exactly once"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_kind_pairing() {
        assert_eq!(CommKind::SendAct.peer_kind(), CommKind::RecvAct);
        assert_eq!(CommKind::RecvGrad.peer_kind(), CommKind::SendGrad);
        assert!(CommKind::SendGrad.is_send());
        assert!(!CommKind::RecvAct.is_send());
    }

    #[test]
    fn display_matches_paper_names() {
        let s = Instr::CommStart {
            kind: CommKind::SendAct,
            mb: 3,
            peer: 1,
            bytes: 8,
            tag: 5,
        };
        assert_eq!(s.to_string(), "SendActStart(mb=3, peer=1)");
        let w = Instr::CommWait {
            kind: CommKind::RecvAct,
            mb: 3,
            tag: 5,
        };
        assert_eq!(w.to_string(), "WaitRecvAct(mb=3)");
    }

    #[test]
    fn validate_catches_missing_pass() {
        let plan = ExecutionPlan {
            per_stage: vec![vec![Instr::ForwardPass { mb: 0 }]],
            shapes: vec![MicroBatchShape::gpt(1, 8)],
            recompute: RecomputeMode::None,
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_accepts_minimal_plan() {
        let plan = ExecutionPlan {
            per_stage: vec![vec![
                Instr::ForwardPass { mb: 0 },
                Instr::BackwardPass { mb: 0 },
            ]],
            shapes: vec![MicroBatchShape::gpt(1, 8)],
            recompute: RecomputeMode::None,
        };
        plan.validate().unwrap();
        assert_eq!(plan.num_instructions(), 2);
    }

    #[test]
    fn validate_rejects_wait_before_start() {
        let plan = ExecutionPlan {
            per_stage: vec![vec![
                Instr::CommWait {
                    kind: CommKind::RecvAct,
                    mb: 0,
                    tag: 1,
                },
                Instr::ForwardPass { mb: 0 },
                Instr::BackwardPass { mb: 0 },
            ]],
            shapes: vec![MicroBatchShape::gpt(1, 8)],
            recompute: RecomputeMode::None,
        };
        assert!(plan.validate().is_err());
    }
}
