#!/usr/bin/env bash
# Full local gate: build + static analysis + tests, warnings fatal.
# This is the tier-1 verify line plus -Dwarnings; CI and pre-push hooks
# should run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== build (release, -D warnings) =="
cargo build --release --workspace

echo "== dynapipe-lint =="
cargo run --release -p dynapipe-lint

echo "== tests (workspace) =="
cargo test -q --workspace

echo "check.sh: all gates passed"
