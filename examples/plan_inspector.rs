//! Plan inspector: look inside a compiled execution plan.
//!
//! Plans one small training iteration, prints each stage's pipeline
//! instruction stream using the paper's instruction names (`ForwardPass`,
//! `SendActStart`, `WaitRecvAct`, …), shows that plans serialize to JSON
//! (they travel through the instruction store in the real system), executes
//! the plan on the simulator, and writes a Chrome/Perfetto trace to
//! `results/plan_inspector_trace.json`.
//!
//! Run with: `cargo run --release --example plan_inspector`

use dynapipe_comm::ExecutionPlan;
use dynapipe_core::compile_replica;
use dynapipe_repro::prelude::*;
use dynapipe_sim::trace::to_chrome_trace;
use std::sync::Arc;

fn main() {
    let cm = Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_3_35b(),
        ParallelConfig::new(1, 1, 4),
        &ProfileOptions::coarse(),
    ));
    let planner = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());

    // A small mini-batch so the instruction streams stay readable.
    let dataset = Dataset::flanv2(5, 400);
    let minibatch: Vec<Sample> = dataset
        .samples
        .iter()
        .take(24)
        .map(|s| s.truncated(1024))
        .collect();
    let plan = planner.plan_iteration(&minibatch).expect("feasible");
    let replica = &plan.replicas[0];

    println!(
        "iteration plan: {} micro-batches, recompute={}, est {:.1} ms\n",
        plan.num_micro_batches,
        plan.recompute.label(),
        plan.est_iteration_time / 1e3
    );
    for (mb, shape) in replica.plan.shapes.iter().enumerate() {
        println!("  micro-batch {mb}: shape {shape}");
    }

    for (stage, stream) in replica.plan.per_stage.iter().enumerate() {
        println!("\n--- stage {stage} ({} instructions) ---", stream.len());
        for ins in stream.iter().take(14) {
            println!("  {ins}");
        }
        if stream.len() > 14 {
            println!("  ... {} more", stream.len() - 14);
        }
    }

    // Plans are plain data: serialize/deserialize round-trips exactly.
    let json = serde_json::to_string(&replica.plan).expect("serialize");
    let back: ExecutionPlan = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, replica.plan);
    println!(
        "\nserialization round-trip OK ({} bytes of JSON for {} instructions)",
        json.len(),
        replica.plan.num_instructions()
    );

    // Execute on the simulator with tracing and export a Chrome trace.
    let programs = compile_replica(&cm, &replica.plan);
    let mut cfg = EngineConfig::unbounded(cm.hw.clone(), cm.num_stages());
    cfg.record_trace = true;
    let result = Engine::new(cfg, programs).run().expect("plan executes");
    println!(
        "simulated: makespan {:.1} ms, utilization {:.0}%, peak memory {:?} MB",
        result.makespan / 1e3,
        result.utilization() * 100.0,
        result
            .peak_memory
            .iter()
            .map(|b| b / 1_000_000)
            .collect::<Vec<_>>()
    );
    let trace = to_chrome_trace(&result.trace);
    std::fs::create_dir_all("results").ok();
    let path = "results/plan_inspector_trace.json";
    std::fs::write(path, trace).expect("write trace");
    println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
}
