//! Quickstart: plan and simulate a few DynaPipe training iterations.
//!
//! Builds a 4-stage GPT-3.35B pipeline on simulated A100s, trains on a
//! FLANv2-like multi-task mixture for a handful of iterations, and prints
//! the metrics the paper reports: throughput (non-padding tokens/s),
//! padding efficiency, planning time, and cost-model accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use dynapipe_repro::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Deployment: GPT-3.35B over 4 pipeline stages (Table 1's 4-GPU row).
    let hw = HardwareModel::a100_cluster();
    let parallel = ParallelConfig::new(1, 1, 4);
    println!("building cost model (profiling the hardware model) ...");
    let cm = Arc::new(CostModel::build(
        hw,
        ModelConfig::gpt_3_35b(),
        parallel,
        &ProfileOptions::default(),
    ));
    println!(
        "  model: GPT {:.2}B params, {} stages, activation budget {:.1} GB/stage",
        cm.model.total_params_b(),
        cm.num_stages(),
        cm.min_activation_budget() as f64 / 1e9,
    );

    // 2. Data: down-sampled FLANv2-like mixture.
    let dataset = Dataset::flanv2(42, 3_000);
    let stats = dataset.input_stats();
    println!(
        "  dataset: {} samples, input length mean {:.0} / p50 {} / max {}",
        dataset.len(),
        stats.mean,
        stats.p50,
        stats.max
    );

    // 3. Train a few iterations with the full DynaPipe pipeline:
    //    DP micro-batching -> adaptive schedule -> planned communication.
    let planner = DynaPipePlanner::new(cm, PlannerConfig::default());
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 65536,
        max_seq_len: 2048,
    };
    let run = RunConfig {
        max_iterations: Some(5),
        ..Default::default()
    };
    println!("\nplanning + simulating 5 iterations (GBS 65536 tokens, msl 2048) ...");
    let report = run_training(&planner, &dataset, gbs, run);

    match &report.failure {
        None => println!("  all iterations feasible"),
        Some(f) => println!("  run stopped early: {f}"),
    }
    for (i, r) in report.records.iter().enumerate() {
        println!(
            "  iter {i}: {:3} micro-batches | est {:7.1} ms | measured {:7.1} ms | \
             plan {:6.1} ms CPU | recompute={}",
            r.num_micro_batches,
            r.est_time / 1e3,
            r.measured_time / 1e3,
            r.planning_time_us / 1e3,
            r.recompute,
        );
    }
    println!("\nresults:");
    println!(
        "  throughput          : {:>10.0} tokens/s",
        report.throughput()
    );
    println!(
        "  padding efficiency  : {:>10.3}",
        report.padding.efficiency()
    );
    println!(
        "  iteration-time MAPE : {:>9.1}% (paper Fig. 18a: ~4-11%)",
        report.time_mape() * 100.0
    );
    println!(
        "  peak-memory MAPE    : {:>9.1}% (paper Fig. 18b: <6%)",
        report.memory_mape() * 100.0
    );
}
