//! Schedule explorer: 1F1B vs the memory-aware adaptive schedule.
//!
//! Visualizes the §5 story: under uniform micro-batches the two schedules
//! tie; under variable execution times 1F1B's zero safety stock causes
//! blocking while the adaptive schedule absorbs the variation; and with a
//! tight memory limit the adaptive schedule delays injections to stay
//! within budget (the paper's Fig. 6/7/11).
//!
//! Run with: `cargo run --release --example schedule_explorer`

use dynapipe_repro::prelude::*;
use dynapipe_schedule::{min_steady_safety_stock, reorder_micro_batches, ReorderConfig};

fn noised(input: &ScheduleInput, sigma: f64, seed: u64) -> ScheduleInput {
    // Deterministic zero-mean Gaussian noise on micro-batch execution
    // times, as in the paper's Fig. 7 study.
    let mut out = input.clone();
    let mut state = seed;
    let mut uniform = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64).max(f64::EPSILON)
    };
    let mut gauss = move || {
        let u1 = uniform();
        let u2 = uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    for mb in 0..out.num_micro_batches() {
        for j in 0..out.num_stages() {
            let f = (1.0 + sigma * gauss()).max(0.02);
            out.fwd[mb][j] *= f;
            out.bwd[mb][j] *= f;
        }
    }
    out
}

fn main() {
    let m = 8;
    let c = 4;
    let input = ScheduleInput::uniform(m, c, 100.0, 200.0, 100);

    println!("=== uniform micro-batches, {m} micro-batches x {c} stages ===");
    let s_1f1b = one_f_one_b(m, c);
    let s_adap = adaptive_schedule(&input);
    let t1 = evaluate_schedule(&s_1f1b, &input).unwrap();
    let t2 = evaluate_schedule(&s_adap, &input).unwrap();
    println!("  1F1B     makespan: {:8.0} µs", t1.times.makespan);
    println!("  adaptive makespan: {:8.0} µs", t2.times.makespan);
    println!(
        "  min steady safety stock  1F1B: {:?} | adaptive: {:?}",
        min_steady_safety_stock(&s_1f1b, &t1),
        min_steady_safety_stock(&s_adap, &t2)
    );

    println!("\n=== execution-time variation (Fig. 7) ===");
    println!(
        "{:>6} | {:>20} | {:>20}",
        "sigma", "1F1B norm. makespan", "adaptive"
    );
    for sigma in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let mut mk1 = 0.0;
        let mut mk2 = 0.0;
        let trials = 8;
        let clean1 = evaluate_schedule(&s_1f1b, &input).unwrap().times.makespan;
        let clean2 = evaluate_schedule(&s_adap, &input).unwrap().times.makespan;
        for seed in 0..trials {
            let actual = noised(&input, sigma, 0xC0FFEE + seed);
            // Normalized over the no-variation makespan, as in Fig. 7; the
            // noise is zero-mean, so any rise is schedule-induced blocking.
            mk1 += evaluate_schedule(&s_1f1b, &actual).unwrap().times.makespan / clean1;
            // Schedules were computed on *planned* (uniform) times and are
            // evaluated on the noised ones, as in the paper's study.
            mk2 += evaluate_schedule(&s_adap, &actual).unwrap().times.makespan / clean2;
        }
        println!(
            "{sigma:>6.1} | {:>20.3} | {:>20.3}",
            mk1 / trials as f64,
            mk2 / trials as f64
        );
    }

    println!("\n=== memory-aware injection (Fig. 11) ===");
    for limit in [u64::MAX / 4, 700, 300] {
        let mut lim_input = input.clone();
        lim_input.mem_limit = vec![limit; c];
        let s = adaptive_schedule(&lim_input);
        let tl = evaluate_schedule(&s, &lim_input).unwrap();
        let peaks = s.peak_memory(&lim_input.act);
        let label = if limit > 10_000 {
            "unlimited".into()
        } else {
            format!("{limit} B")
        };
        println!(
            "  limit {label:>10}: makespan {:8.0} µs | stage-0 peak {:>4} B ({} activations)",
            tl.times.makespan,
            peaks[0],
            peaks[0] / 100
        );
    }

    println!("\n=== micro-batch reordering (§5) ===");
    let mut varied = ScheduleInput::uniform(12, c, 100.0, 200.0, 100);
    for (i, scale) in [0.2, 1.9, 0.4, 1.6, 0.3, 1.8, 0.5, 1.2, 0.9, 1.4, 0.6, 1.1]
        .iter()
        .enumerate()
    {
        for j in 0..c {
            varied.fwd[i][j] *= scale;
            varied.bwd[i][j] *= scale;
        }
    }
    let identity = evaluate_schedule(&adaptive_schedule(&varied), &varied)
        .unwrap()
        .times
        .makespan;
    let (order, reordered) = reorder_micro_batches(&varied, &ReorderConfig { num_clusters: 3 });
    println!("  identity order makespan : {identity:8.0} µs");
    println!("  clustered order makespan: {reordered:8.0} µs (order {order:?})");

    println!("\n=== pipeline gantt (adaptive, variable micro-batches) ===");
    let sel = varied.clone();
    let sched = adaptive_schedule(&sel);
    let tl = evaluate_schedule(&sched, &sel).unwrap();
    // Render with the sim's gantt helper by converting op times to traces.
    let mut events = Vec::new();
    for (mb, stages) in tl.times.fwd.iter().enumerate() {
        for (j, &(s, e)) in stages.iter().enumerate() {
            events.push(dynapipe_sim::TraceEvent {
                device: j,
                peer: usize::MAX,
                kind: dynapipe_sim::TraceKind::Forward,
                label: dynapipe_sim::OpLabel::new(mb as u32, j as u32, false),
                start: s,
                end: e,
            });
        }
    }
    for (mb, stages) in tl.times.bwd.iter().enumerate() {
        for (j, &(s, e)) in stages.iter().enumerate() {
            events.push(dynapipe_sim::TraceEvent {
                device: j,
                peer: usize::MAX,
                kind: dynapipe_sim::TraceKind::Backward,
                label: dynapipe_sim::OpLabel::new(mb as u32, j as u32, true),
                start: s,
                end: e,
            });
        }
    }
    println!("{}", dynapipe_sim::trace::render_gantt(&events, c, 100));
    println!("  (digits = forward micro-batch id, letters = backward, '.' = idle)");
}
