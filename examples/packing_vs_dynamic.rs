//! Packing vs dynamic micro-batching: padding, attention waste, deadlocks.
//!
//! Reproduces the motivation study (§2, Figs. 4/15) at example scale:
//! padding efficiency of naive padding / packing / dynamic micro-batching,
//! packing's cross-sample attention waste, and a live demonstration that
//! the naive communication order deadlocks on the simulator while
//! DynaPipe's planned order runs to completion.
//!
//! Run with: `cargo run --release --example packing_vs_dynamic`

use dynapipe_batcher::{pack_samples, sort_samples, PaddingStats};
use dynapipe_comm::naive_plan;
use dynapipe_core::compile_replica;
use dynapipe_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let dataset = Dataset::flanv2(99, 2_000);
    let msl = 2048;
    let samples: Vec<Sample> = dataset.samples.iter().map(|s| s.truncated(msl)).collect();

    println!("=== padding efficiency (GPT view, msl={msl}) ===");
    // Naive padding: one giant batch padded to the longest sample.
    let naive = MicroBatch::new(samples.clone());
    println!(
        "  naive padding       : {:.3}",
        naive.padding_efficiency(ModelArch::Gpt)
    );

    // Packing.
    let packs = pack_samples(&samples, ModelArch::Gpt, msl, 0);
    let packed_actual: u64 = packs
        .iter()
        .flat_map(|p| p.samples.iter())
        .map(|s| s.total_tokens() as u64)
        .sum();
    let packed_total = packs.len() as u64 * msl as u64;
    println!(
        "  packing             : {:.3}  ({} sequences)",
        packed_actual as f64 / packed_total as f64,
        packs.len()
    );
    let waste: f64 = packs
        .iter()
        .map(|p| p.attention_waste(ModelArch::Gpt))
        .sum::<f64>()
        / packs.len() as f64;
    println!(
        "  packing attn waste  : {:.1}% of attention FLOPs cross unrelated samples",
        waste * 100.0
    );

    // Dynamic micro-batching via the DP partitioner.
    let cm = Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::gpt_3_35b(),
        ParallelConfig::new(1, 1, 4),
        &ProfileOptions::coarse(),
    ));
    let mut ordered = samples.clone();
    sort_samples(ModelArch::Gpt, &mut ordered);
    let partitioner = Partitioner::new(&cm, DpConfig::new(cm.min_activation_budget()));
    let partition = partitioner.partition(&ordered).expect("feasible");
    let stats = PaddingStats::from_micro_batches(&partition.micro_batches, ModelArch::Gpt);
    println!(
        "  dynamic micro-batch : {:.3}  ({} micro-batches, zero attention waste)",
        stats.efficiency(),
        partition.num_micro_batches()
    );

    println!("\n=== communication order: naive vs planned (§2.3 / §6) ===");
    let planner = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());
    let minibatch: Vec<Sample> = samples.iter().take(48).copied().collect();
    let plan = planner.plan_iteration(&minibatch).expect("feasible plan");
    let replica = &plan.replicas[0];

    // DynaPipe's planned order: runs on the simulator.
    let programs = compile_replica(&cm, &replica.plan);
    let cfg = EngineConfig::unbounded(cm.hw.clone(), cm.num_stages());
    let result = Engine::new(cfg, programs)
        .run()
        .expect("planned order executes");
    println!(
        "  planned order  : completed, makespan {:.1} ms, utilization {:.0}%",
        result.makespan / 1e3,
        result.utilization() * 100.0
    );

    // Naive order over the *same* schedule: deadlocks.
    let shapes = &replica.plan.shapes;
    let boundary: Vec<Vec<u64>> = shapes
        .iter()
        .map(|sh| {
            (0..cm.num_stages() - 1)
                .map(|j| cm.boundary_bytes(j, sh))
                .collect()
        })
        .collect();
    let naive = naive_plan(&replica.schedule, &boundary, shapes, plan.recompute);
    let programs = compile_replica(&cm, &naive);
    let cfg = EngineConfig::unbounded(cm.hw.clone(), cm.num_stages());
    match Engine::new(cfg, programs).run() {
        Ok(r) => println!(
            "  naive order    : unexpectedly completed ({:.1} ms)",
            r.makespan / 1e3
        ),
        Err(e) => println!("  naive order    : DEADLOCK — {e}"),
    }

    println!("\n=== T5 encoder/decoder padding split (Fig. 15b flavour) ===");
    let t5_samples: Vec<Sample> = samples.iter().take(512).copied().collect();
    let t5_packs = pack_samples(&t5_samples, ModelArch::T5, msl, msl / 4);
    let enc_actual: u64 = t5_packs.iter().map(|p| p.input_used as u64).sum();
    let dec_actual: u64 = t5_packs.iter().map(|p| p.target_used as u64).sum();
    println!(
        "  packing   : encoder eff {:.3} | decoder eff {:.3}",
        enc_actual as f64 / (t5_packs.len() * msl) as f64,
        dec_actual as f64 / (t5_packs.len() * msl / 4) as f64
    );
    // Order by the 2D (input, target) TSP heuristic so micro-batches are
    // homogeneous in *both* sequence lengths (the "(T)" variant of §8.4).
    let mut t5_sorted = t5_samples.clone();
    dynapipe_batcher::tsp_order(&mut t5_sorted);
    let t5_cm = Arc::new(CostModel::build(
        HardwareModel::a100_cluster(),
        ModelConfig::t5_11b(),
        ParallelConfig::new(1, 4, 2),
        &ProfileOptions::coarse(),
    ));
    // T5-11B cannot store attention scores for 2048-token samples in the
    // post-model-state budget: like the paper's T5 runs, use selective
    // recomputation (the planner normally picks this automatically).
    let mut t5_dp = DpConfig::new(t5_cm.min_activation_budget());
    t5_dp.recompute = RecomputeMode::Selective;
    let t5_part = Partitioner::new(&t5_cm, t5_dp)
        .partition(&t5_sorted)
        .expect("feasible");
    let t5_stats = PaddingStats::from_micro_batches(&t5_part.micro_batches, ModelArch::T5);
    println!(
        "  DynaPipe  : encoder eff {:.3} | decoder eff {:.3}  (balanced, as in the paper)",
        t5_stats.encoder_efficiency(),
        t5_stats.decoder_efficiency()
    );
}
