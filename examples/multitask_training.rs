//! Multi-task training comparison: DynaPipe vs the packing baseline.
//!
//! A miniature of the paper's headline experiment (Fig. 13): train GPT and
//! T5 on a FLANv2-like mixture at several maximum sequence lengths and
//! compare the training throughput of DynaPipe's dynamic micro-batching
//! against packing (MLM+DS) and token-based micro-batching, all on the same
//! simulated cluster.
//!
//! Run with: `cargo run --release --example multitask_training`

use dynapipe_repro::prelude::*;
use std::sync::Arc;

fn run_one(
    cm: &Arc<CostModel>,
    dataset: &Dataset,
    msl: usize,
    planner: &dyn IterationPlanner,
) -> Option<f64> {
    let gbs = GlobalBatchConfig {
        tokens_per_batch: 65536,
        max_seq_len: msl,
    };
    let run = RunConfig {
        max_iterations: Some(4),
        ..Default::default()
    };
    let report = run_training(planner, dataset, gbs, run);
    let _ = cm;
    report.feasible().then(|| report.throughput())
}

fn main() {
    let hw = HardwareModel::a100_cluster();
    let dataset = Dataset::flanv2(7, 4_000);

    for (name, model, parallel) in [
        (
            "GPT-3.35B (pp=4)",
            ModelConfig::gpt_3_35b(),
            ParallelConfig::new(1, 1, 4),
        ),
        (
            "T5-11B (tp=4, pp=2)",
            ModelConfig::t5_11b(),
            ParallelConfig::new(1, 4, 2),
        ),
    ] {
        println!("=== {name} ===");
        println!(
            "{:>8} | {:>12} | {:>12} | {:>12} | {:>7}",
            "max len", "DynaPipe t/s", "packing t/s", "token-based", "speedup"
        );
        for msl in [512usize, 1024, 2048, 4096] {
            let cm = Arc::new(CostModel::build(
                hw.clone(),
                model,
                parallel,
                &ProfileOptions::coarse(),
            ));
            if !cm.is_feasible() {
                println!("{msl:>8} | deployment infeasible (model state exceeds memory)");
                continue;
            }
            let dyna = DynaPipePlanner::new(cm.clone(), PlannerConfig::default());
            let dyna_tps = run_one(&cm, &dataset, msl, &dyna);

            let packing = BaselinePlanner::new(
                cm.clone(),
                BaselineKind::Packing {
                    max_seq_len: msl,
                    max_target_len: (msl / 4).max(64),
                    mb_size: 1,
                },
            );
            let pack_tps = run_one(&cm, &dataset, msl, &packing);

            let tb = BaselinePlanner::new(
                cm.clone(),
                BaselineKind::TokenBased {
                    token_budget: 4096,
                    ordering: dynapipe_repro::batcher::OrderingStrategy::Sort,
                },
            );
            let tb_tps = run_one(&cm, &dataset, msl, &tb);

            let fmt = |x: Option<f64>| match x {
                Some(v) => format!("{v:12.0}"),
                None => format!("{:>12}", "OOM"),
            };
            let speedup = match (dyna_tps, pack_tps) {
                (Some(d), Some(p)) if p > 0.0 => format!("{:6.2}x", d / p),
                _ => "    n/a".to_string(),
            };
            println!(
                "{msl:>8} | {} | {} | {} | {speedup}",
                fmt(dyna_tps),
                fmt(pack_tps),
                fmt(tb_tps)
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper Fig. 13): packing throughput decays quickly as the\n\
         maximum sequence length grows (quadratic attention over packed sequences),\n\
         while DynaPipe follows the data's average length and decays slowly."
    );
}
